#ifndef YUKTA_PLATFORM_BOARD_H_
#define YUKTA_PLATFORM_BOARD_H_

/**
 * @file
 * The simulated ODROID XU3 board: integrates DVFS, power, thermal,
 * sensors, the emergency TMU, thread placement, and a workload into a
 * discrete-time (1 ms) simulation. Controllers interact with it
 * exactly the way the paper's privileged processes interact with the
 * real board: set core counts / cluster frequencies (cpufreq +
 * hotplug), set thread placement (sched_setaffinity), and read the
 * slow power sensors, temperature, and perf counters.
 */

#include <cstdint>
#include <optional>
#include <vector>

#include "platform/config.h"
#include "platform/dvfs.h"
#include "platform/power_thermal.h"
#include "platform/scheduler.h"
#include "platform/sensors.h"
#include "platform/tmu.h"
#include "platform/workload.h"

namespace yukta::obs {
class TraceSink;
}  // namespace yukta::obs

namespace yukta::platform {

/** One row of the optional board trace. */
struct TraceSample
{
    double time = 0.0;       ///< s.
    double p_big = 0.0;      ///< True big-cluster power (W).
    double p_little = 0.0;   ///< True little-cluster power (W).
    double temp = 0.0;       ///< Hot-spot temperature (C).
    double bips = 0.0;       ///< Total BIPS over the last interval.
    double f_big = 0.0;      ///< Applied big frequency (GHz).
    double f_little = 0.0;   ///< Applied little frequency (GHz).
    std::size_t big_cores = 0;
    std::size_t little_cores = 0;
    std::size_t threads = 0;
    bool emergency = false;
};

/** Hardware-layer actuation request (the HW controller's inputs). */
struct HardwareInputs
{
    std::size_t big_cores = 4;     ///< Requested powered big cores.
    std::size_t little_cores = 4;  ///< Requested powered little cores.
    double freq_big = 2.0;         ///< Requested big frequency (GHz).
    double freq_little = 1.4;      ///< Requested little freq (GHz).
};

/** The simulated board. */
class Board
{
  public:
    /**
     * @param cfg board configuration.
     * @param workload workload to run.
     * @param seed sensor-noise seed (deterministic runs per seed).
     */
    Board(BoardConfig cfg, Workload workload, std::uint32_t seed = 1);

    // ------------------------------------------------------------
    // Actuation (what privileged controller processes can do).
    // ------------------------------------------------------------

    /** Requests DVFS + hotplug settings (quantized and clamped). */
    void applyHardwareInputs(const HardwareInputs& in);

    /** Requests a thread placement policy (OS layer actuation). */
    void applyPlacementPolicy(const PlacementPolicy& policy);

    // ------------------------------------------------------------
    // Simulation.
    // ------------------------------------------------------------

    /** Advances the simulation by @p seconds (multiple 1 ms steps). */
    void run(double seconds);

    /** @return true when the workload has completed. */
    bool done() const { return workload_.done(); }

    /** @return simulated seconds elapsed. */
    double elapsed() const { return time_; }

    /** @return joules consumed so far (both clusters). */
    double energy() const { return energy_; }

    /** @return Energy x Delay so far (J * s). */
    double energyDelay() const { return energy_ * time_; }

    // ------------------------------------------------------------
    // Observation (sensors + perf counters + OS bookkeeping).
    // ------------------------------------------------------------

    /** Sampled (sensor) big-cluster power, W. */
    double sensedPowerBig() const { return sensors_.powerBig(); }

    /** Sampled little-cluster power, W. */
    double sensedPowerLittle() const { return sensors_.powerLittle(); }

    /** Sampled hot-spot temperature, C. */
    double sensedTemperature() const { return sensors_.temperature(); }

    /**
     * One complete sensor snapshot (powers, temperature, cumulative
     * perf counters) — the observation boundary the fault layer
     * corrupts and the supervisor validates.
     */
    SensorReadings readings() const;

    /** Access to the sensor front-end (clamp counters, tests). */
    const Sensors& sensors() const { return sensors_; }

    /** True instantaneous values (for tracing / oracle tests). */
    double truePowerBig() const { return true_p_big_; }
    double truePowerLittle() const { return true_p_little_; }
    double trueTemperature() const { return thermal_.hotspot(); }

    /** Cumulative giga-instructions retired per cluster. */
    const PerfCounters& perfCounters() const { return counters_; }

    /** @return currently applied hardware state (after TMU caps). */
    const HardwareInputs& appliedHardware() const { return applied_; }

    /** @return the hardware state requested by the controller. */
    const HardwareInputs& requestedHardware() const { return requested_; }

    /** @return the active placement. */
    const Placement& placement() const { return placement_; }

    /** @return the policy currently in force. */
    const PlacementPolicy& placementPolicy() const { return policy_; }

    /** @return number of runnable threads. */
    std::size_t threadsRunning() const
    {
        return workload_.numRunnableThreads();
    }

    /** Spare compute capacity of a cluster (Eq. 2). */
    double spareCompute(ClusterId c) const;

    /** @return true when any emergency cap is in force. */
    bool emergencyActive() const { return tmu_.caps().active; }

    /** @return total emergency-active time (s). */
    double emergencyTime() const { return tmu_.emergencyTime(); }

    /**
     * @return total time (s) the *true* board state violated any of
     * the paper's operating constraints (P_big, P_little, or T over
     * their Sec. V-A limits). The robustness benches compare this
     * between supervised and unsupervised stacks.
     */
    double constraintViolationTime() const { return violation_time_; }

    /**
     * @return actuation requests rejected because a field was
     * non-finite (NaN/Inf); like a sysfs write of garbage, the
     * previous setting stays in force.
     */
    std::size_t rejectedInputCount() const { return rejected_inputs_; }

    /** Access to the DVFS tables (for controllers/heuristics). */
    const DvfsTable& dvfs(ClusterId c) const
    {
        return c == ClusterId::kBig ? dvfs_big_ : dvfs_little_;
    }

    /** Board configuration and workload state (read-only). */
    const BoardConfig& config() const { return cfg_; }
    const Workload& workload() const { return workload_; }

    /**
     * Scales the *true* cluster power by @p scale (> 0) from the next
     * step on -- a plant-parameter drift (silicon aging, cooling
     * degradation) that every downstream stage (energy, thermal, TMU,
     * sensors, violation accounting) sees, while the controller's
     * shipped model does not. Scale 1.0 restores the exact nominal
     * path (guarded, not multiplied).
     */
    void setPowerDriftScale(double scale);

    /** @return the active power drift scale (1.0 = nominal). */
    double powerDriftScale() const
    {
        return drift_active_ ? drift_scale_ : 1.0;
    }

    // ------------------------------------------------------------
    // Tracing.
    // ------------------------------------------------------------

    /** Enables trace recording every @p interval seconds. */
    void enableTrace(double interval);

    /** @return the trace samples recorded so far. */
    const std::vector<TraceSample>& trace() const { return trace_; }

    /**
     * Emits "platform"/"tmu" events whenever the emergency caps
     * change, to @p sink; nullptr detaches.
     */
    void attachTraceSink(obs::TraceSink* sink) { event_trace_ = sink; }

    // ------------------------------------------------------------
    // Checkpointing.
    // ------------------------------------------------------------

    /**
     * Appends the full mutable board state (physics, sensors, TMU,
     * workload progress, actuation, OS bookkeeping) to @p w. Trace
     * buffers are not serialized — fleet boards never trace.
     */
    void save(obs::StateWriter& w) const;

    /**
     * Restores state written by save into a board constructed from
     * the same config, workload, and seed.
     */
    void load(obs::StateReader& r);

  private:
    obs::TraceSink* event_trace_ = nullptr;
    BoardConfig cfg_;
    DvfsTable dvfs_big_;
    DvfsTable dvfs_little_;
    PowerModel power_big_;
    PowerModel power_little_;
    ThermalModel thermal_;
    Sensors sensors_;
    Tmu tmu_;
    Workload workload_;

    HardwareInputs requested_;
    HardwareInputs applied_;
    PlacementPolicy policy_;
    Placement placement_;
    std::size_t placement_version_ = static_cast<std::size_t>(-1);

    double time_ = 0.0;
    double energy_ = 0.0;
    double true_p_big_ = 0.0;
    double true_p_little_ = 0.0;
    double migration_stall_left_ = 0.0;
    double violation_time_ = 0.0;
    bool drift_active_ = false;   ///< Plant drift in force.
    double drift_scale_ = 1.0;    ///< True-power multiplier.
    std::size_t rejected_inputs_ = 0;
    PerfCounters counters_;

    std::vector<double> rate_scratch_;       ///< Reused per step.
    std::vector<ThreadInfo> info_scratch_;   ///< Reused per step.

    double trace_interval_ = 0.0;
    double trace_timer_ = 0.0;
    double trace_instr_mark_ = 0.0;
    std::vector<TraceSample> trace_;

    void stepOnce();
    void refreshApplied();
    void refreshPlacement(bool force);
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_BOARD_H_
