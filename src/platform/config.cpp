#include "platform/config.h"

namespace yukta::platform {

BoardConfig
BoardConfig::odroidXu3()
{
    BoardConfig cfg;
    // Big cluster: Cortex-A15 class, 0.2-2.0 GHz.
    cfg.big.num_cores = 4;
    cfg.big.freq_min = 0.2;
    cfg.big.freq_max = 2.0;
    cfg.big.freq_step = 0.1;
    cfg.big.volt_min = 0.90;
    cfg.big.volt_max = 1.36;  // Exynos big cluster spans ~0.9-1.36 V:
                              // the steep V-f curve is what makes high
                              // frequency E x D-inefficient.
    cfg.big.ceff = 0.33;
    cfg.big.leak_ref = 0.12;
    cfg.big.leak_tc = 0.010;
    cfg.big.uncore = 0.25;
    cfg.big.thermal_weight = 1.0;

    // Little cluster: Cortex-A7 class, 0.2-1.4 GHz.
    cfg.little.num_cores = 4;
    cfg.little.freq_min = 0.2;
    cfg.little.freq_max = 1.4;
    cfg.little.freq_step = 0.1;
    cfg.little.volt_min = 0.90;
    cfg.little.volt_max = 1.20;
    cfg.little.ceff = 0.065;
    cfg.little.leak_ref = 0.008;
    cfg.little.leak_tc = 0.008;
    cfg.little.uncore = 0.02;
    cfg.little.thermal_weight = 0.3;

    return cfg;
}

}  // namespace yukta::platform
