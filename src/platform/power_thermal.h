#ifndef YUKTA_PLATFORM_POWER_THERMAL_H_
#define YUKTA_PLATFORM_POWER_THERMAL_H_

/**
 * @file
 * Power and thermal models of the simulated board.
 *
 * Power per cluster: for each powered core,
 *   P_dyn  = Ceff * activity * V^2 * f * utilization
 *   P_leak = leak_ref * (V / Vmax) * (1 + tc * (T - Tref))
 * plus a per-cluster uncore term. Temperature follows a two-node RC
 * network (silicon hot spot over heatsink over ambient).
 */

#include "obs/stateio.h"
#include "platform/config.h"
#include "platform/dvfs.h"

namespace yukta::platform {

/** Instantaneous operating state of one cluster for power purposes. */
struct ClusterActivity
{
    std::size_t cores_on = 0;     ///< Powered cores.
    double freq = 0.2;            ///< GHz (quantized).
    double avg_utilization = 0.0; ///< Mean busy fraction of powered cores.
    double activity = 1.0;        ///< Workload switching factor (~0.7-1.2).
};

/** Computes cluster power (W). */
class PowerModel
{
  public:
    /** Builds the model for one cluster and its DVFS table. */
    PowerModel(const ClusterConfig& cfg, const DvfsTable& dvfs);

    /**
     * @param act current activity.
     * @param temp current silicon temperature (C).
     * @return total cluster power in watts.
     */
    double clusterPower(const ClusterActivity& act, double temp) const;

    /** Dynamic-only component (for diagnostics). */
    double dynamicPower(const ClusterActivity& act) const;

    /** Leakage component at temperature @p temp. */
    double leakagePower(const ClusterActivity& act, double temp) const;

  private:
    ClusterConfig cfg_;
    DvfsTable dvfs_;  ///< Owned copy: keeps PowerModel freely movable.
    static constexpr double kLeakRefTemp = 45.0;  ///< C.
};

/** Two-node RC thermal model of the hot spot. */
class ThermalModel
{
  public:
    /** Builds the RC model from @p cfg, starting at ambient. */
    explicit ThermalModel(const ThermalConfig& cfg);

    /**
     * Advances the model by @p dt seconds with the given weighted
     * power (sum over clusters of power * thermal_weight).
     */
    void step(double weighted_power, double dt);

    /** @return the hot-spot (silicon) temperature in C. */
    double hotspot() const { return t_silicon_; }

    /** @return the heatsink node temperature in C. */
    double heatsink() const { return t_heatsink_; }

    /** Resets both nodes to ambient. */
    void reset();

    /** @return the steady-state hotspot for constant power (C). */
    double steadyState(double weighted_power) const;

    /** Appends both node temperatures to @p w. */
    void save(obs::StateWriter& w) const
    {
        w.f64("thermal.t_silicon", t_silicon_);
        w.f64("thermal.t_heatsink", t_heatsink_);
    }

    /** Restores state written by save. */
    void load(obs::StateReader& r)
    {
        t_silicon_ = r.f64("thermal.t_silicon");
        t_heatsink_ = r.f64("thermal.t_heatsink");
    }

  private:
    ThermalConfig cfg_;
    double t_silicon_;
    double t_heatsink_;
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_POWER_THERMAL_H_
