#ifndef YUKTA_PLATFORM_WORKLOAD_H_
#define YUKTA_PLATFORM_WORKLOAD_H_

/**
 * @file
 * Workload models. An application is a sequence of phases, each with
 * a thread count, per-thread work (giga-instructions), memory
 * boundness, and switching activity. PARSEC-style apps have a serial
 * phase followed by barriered parallel phases; SPEC-style workloads
 * are N independent copies. A Workload runs one or more application
 * instances concurrently (heterogeneous mixes run two).
 */

#include <cstddef>
#include <string>
#include <vector>

#include "obs/stateio.h"

namespace yukta::platform {

/** One phase of an application. */
struct AppPhase
{
    std::size_t num_threads = 1;    ///< Threads alive in this phase.
    double work_per_thread = 1.0;   ///< Giga-instructions per thread.
    double mem_boundness = 0.2;     ///< Memory-time fraction, [0, 1).
    double activity = 1.0;          ///< Switching activity factor.

    /**
     * Barrier semantics: when true, the phase ends only when every
     * thread finishes (finished threads idle at the barrier). When
     * false (SPEC copies), threads complete independently.
     */
    bool barrier = true;

    /**
     * Iteration-level synchronization intensity, [0, 1]. PARSEC
     * kernels barrier every few milliseconds, so a thread's effective
     * progress is dragged toward the slowest sibling:
     * rate_eff = (1 - c) * rate_own + c * rate_slowest. 0 = fully
     * independent (SPEC copies).
     */
    double barrier_coupling = 0.0;
};

/** A parameterized application model. */
struct AppModel
{
    std::string name;
    double ipc_big = 1.5;     ///< Per-thread IPC on a big core.
    double ipc_little = 0.7;  ///< Per-thread IPC on a little core.
    std::vector<AppPhase> phases;

    /** Total giga-instructions across all phases and threads. */
    double totalWork() const;
};

/** Dynamic attributes of one runnable thread. */
struct ThreadInfo
{
    double ipc_big = 0.0;
    double ipc_little = 0.0;
    double mem_boundness = 0.0;
    double activity = 1.0;
    double barrier_coupling = 0.0;  ///< Lockstep intensity, [0, 1].
    std::size_t instance = 0;       ///< Owning application instance.
};

/** A set of concurrently-running application instances. */
class Workload
{
  public:
    /** Starts all instances at their first phase. */
    explicit Workload(std::vector<AppModel> apps);

    /** Convenience: a single application. */
    explicit Workload(AppModel app);

    /** @return number of currently runnable threads (not finished). */
    std::size_t numRunnableThreads() const;

    /** @return attributes of runnable thread @p i (dense indexing). */
    ThreadInfo threadInfo(std::size_t i) const;

    /**
     * Retires @p giga_instr of work on runnable thread @p i. Phase
     * transitions happen lazily inside this call; check
     * placementVersion() to detect them.
     */
    void retire(std::size_t i, double giga_instr);

    /** @return true when every instance has completed all phases. */
    bool done() const;

    /** @return remaining giga-instructions across everything. */
    double workRemaining() const;

    /**
     * Monotone counter bumped whenever the runnable thread set
     * changes (phase transition or thread completion), signalling the
     * scheduler to re-place threads.
     */
    std::size_t placementVersion() const { return version_; }

    /** @return name summary, e.g. "blackscholes" or "bl+mc". */
    std::string name() const;

    /**
     * Appends the mutable execution state (phase indices, per-thread
     * progress, placement version) to @p w. The static app models are
     * not serialized: load() requires a Workload built from the same
     * apps.
     */
    void save(obs::StateWriter& w) const;

    /**
     * Restores state written by save into a Workload constructed from
     * the same application models.
     * @throws std::runtime_error when the instance count differs.
     */
    void load(obs::StateReader& r);

  private:
    struct ThreadState
    {
        double remaining = 0.0;
        bool at_barrier = false;  ///< Finished, waiting for the phase.
    };

    struct Instance
    {
        AppModel app;
        std::size_t phase = 0;
        std::vector<ThreadState> threads;
        bool finished = false;
    };

    std::vector<Instance> instances_;
    std::size_t version_ = 0;

    void startPhase(Instance& inst);
    void maybeAdvancePhase(Instance& inst);

    /** Maps dense runnable index to (instance, thread). */
    std::pair<std::size_t, std::size_t> locate(std::size_t i) const;
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_WORKLOAD_H_
