#ifndef YUKTA_PLATFORM_APPS_H_
#define YUKTA_PLATFORM_APPS_H_

/**
 * @file
 * Catalog of application models shaped after the paper's evaluation
 * set (Sec. V-A): 8-threaded PARSEC programs with native inputs,
 * 8-copy SPEC06 programs with train inputs, a disjoint training set,
 * and the four heterogeneous mixes of Sec. VI-C.
 *
 * The IPC / memory-boundness / phase parameters are synthetic but
 * chosen to span the same diversity (compute-bound vs memory-bound,
 * stable vs thread-churning) that drives the paper's results.
 */

#include <string>
#include <vector>

#include "platform/workload.h"

namespace yukta::platform {

/** Application catalog (all models are static data). */
class AppCatalog
{
  public:
    /**
     * @return the model for @p name.
     * @throws std::invalid_argument for unknown names.
     */
    static AppModel get(const std::string& name);

    /** @return same app with thread counts scaled to @p threads. */
    static AppModel getWithThreads(const std::string& name,
                                   std::size_t threads);

    /** Evaluation SPEC programs (8 copies each, train inputs). */
    static std::vector<std::string> specApps();

    /** Evaluation PARSEC programs (8 threads, native inputs). */
    static std::vector<std::string> parsecApps();

    /** Training programs (disjoint from evaluation, Sec. V-A). */
    static std::vector<std::string> trainingApps();

    /** All evaluation programs: SPEC then PARSEC. */
    static std::vector<std::string> evaluationApps();

    /**
     * Heterogeneous mixes of Sec. VI-C: blmc, stga, blst, mcga
     * (4-thread PARSEC + 4-copy SPEC combinations).
     */
    static std::vector<std::string> mixNames();

    /** @return the two-instance workload for a mix name. */
    static Workload getMix(const std::string& mix);

    /** Short label used in the paper's figures (e.g. "bla"). */
    static std::string shortLabel(const std::string& name);

    /**
     * Open-ended request-serving workload for the fleet simulator:
     * @p threads independent server threads with effectively
     * inexhaustible work, so the board never runs dry and its retired
     * giga-instructions measure pure service capacity. The fleet
     * layer drains its request queues at the board's measured retire
     * rate rather than tracking individual requests in the plant.
     */
    static AppModel makeServiceApp(std::size_t threads,
                                   double ipc_big = 1.5,
                                   double mem_boundness = 0.25);
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_APPS_H_
