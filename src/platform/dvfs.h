#ifndef YUKTA_PLATFORM_DVFS_H_
#define YUKTA_PLATFORM_DVFS_H_

/**
 * @file
 * Per-cluster DVFS: the frequency grid (like cpufreq's available
 * frequencies), voltage-frequency curve, and quantization helpers.
 */

#include <cstddef>
#include <vector>

#include "platform/config.h"

namespace yukta::platform {

/** DVFS table for one cluster. */
class DvfsTable
{
  public:
    /** Builds the table from @p cfg (linear V/f interpolation). */
    explicit DvfsTable(const ClusterConfig& cfg);

    /** @return all allowed frequencies in GHz, ascending. */
    const std::vector<double>& frequencies() const { return freqs_; }

    /** @return number of allowed operating points. */
    std::size_t numLevels() const { return freqs_.size(); }

    /** @return the closest allowed frequency to @p f (clamped). */
    double quantize(double f) const;

    /** @return the voltage at (quantized) frequency @p f. */
    double voltage(double f) const;

    /** @return the next level down from @p f, or the floor. */
    double stepDown(double f, std::size_t levels = 1) const;

    /** @return the next level up from @p f, or the ceiling. */
    double stepUp(double f, std::size_t levels = 1) const;

    /** Lowest / highest allowed frequency (GHz). */
    double minFreq() const { return freqs_.front(); }
    double maxFreq() const { return freqs_.back(); }

  private:
    std::vector<double> freqs_;
    double volt_min_;
    double volt_max_;

    std::size_t indexOf(double f) const;
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_DVFS_H_
