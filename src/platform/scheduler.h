#ifndef YUKTA_PLATFORM_SCHEDULER_H_
#define YUKTA_PLATFORM_SCHEDULER_H_

/**
 * @file
 * Thread-placement mechanics (the OS scheduler "actuator"). The OS
 * controller's three inputs (Sec. IV-B) are the policy here:
 * threads on the big cluster, average threads per non-idle big core,
 * and average threads per non-idle little core. The mechanics turn a
 * policy plus the active core counts into a concrete thread-to-core
 * map, like sched_setaffinity calls would.
 */

#include <cstddef>
#include <vector>

#include "platform/config.h"

namespace yukta::platform {

/** Concrete assignment of runnable threads to cores. */
struct Placement
{
    /** Threads mapped onto each powered big core (size = big cores on). */
    std::vector<std::size_t> big_core_threads;

    /** Threads mapped onto each powered little core. */
    std::vector<std::size_t> little_core_threads;

    /** Per-thread: cluster assignment. */
    std::vector<ClusterId> thread_cluster;

    /** Per-thread: core index within its cluster. */
    std::vector<std::size_t> thread_core;

    /** @return total threads on the given cluster. */
    std::size_t threadsOn(ClusterId c) const;

    /** @return non-idle core count on the given cluster. */
    std::size_t busyCores(ClusterId c) const;

    /** @return idle-but-powered core count on the given cluster. */
    std::size_t idleCoresOn(ClusterId c) const;
};

/** Placement policy = the OS controller's inputs. */
struct PlacementPolicy
{
    double threads_big = 4.0;   ///< Threads assigned to the big cluster.
    double tpc_big = 1.0;       ///< Avg threads per non-idle big core.
    double tpc_little = 1.0;    ///< Avg threads per non-idle little core.
};

/**
 * Computes a placement for @p num_threads runnable threads.
 *
 * @param policy the OS controller's inputs (values are rounded and
 *   clamped to feasibility like a real scheduler would).
 * @param big_on, little_on powered core counts per cluster.
 */
Placement placeThreads(const PlacementPolicy& policy, std::size_t num_threads,
                       std::size_t big_on, std::size_t little_on);

/**
 * Round-robin policy of the Decoupled heuristic OS controller:
 * threads spread evenly over all powered cores, ignoring core types.
 */
PlacementPolicy roundRobinPolicy(std::size_t num_threads, std::size_t big_on,
                                 std::size_t little_on);

/**
 * Spare Compute Capacity of a cluster (Eq. 2):
 * SC = #idle_cores_on - (#threads - #cores_on).
 */
double spareCompute(const Placement& p, ClusterId c, std::size_t cores_on);

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_SCHEDULER_H_
