#include "platform/tmu.h"

#include <algorithm>

namespace yukta::platform {

Tmu::Tmu(const TmuConfig& cfg, const BoardConfig& board, const DvfsTable& big,
         const DvfsTable& little)
    : cfg_(cfg), board_(board), big_(big), little_(little)
{
    caps_.freq_cap_big = big_.maxFreq();
    caps_.freq_cap_little = little_.maxFreq();
    caps_.max_big_cores = board_.big.num_cores;
}

EmergencyCaps
Tmu::step(double dt, double temp, double p_big, double p_little, double f_big,
          double f_little)
{
    (void)f_big;
    (void)f_little;

    // Track sustained power excess.
    if (p_big > cfg_.power_margin * board_.power_limit_big) {
        over_big_ += dt;
    } else {
        over_big_ = std::max(0.0, over_big_ - dt);
    }
    if (p_little > cfg_.power_margin * board_.power_limit_little) {
        over_little_ += dt;
    } else {
        over_little_ = std::max(0.0, over_little_ - dt);
    }
    cooldown_left_ = std::max(0.0, cooldown_left_ - dt);

    action_timer_ += dt;
    if (action_timer_ >= cfg_.action_period) {
        action_timer_ = 0.0;

        // --- Thermal emergencies (highest priority): deep cut and
        // forced hotplug, held through a long cooldown. The real
        // Exynos TMU clamps hard and recovers reluctantly.
        if (temp > cfg_.temp_hotplug) {
            if (caps_.max_big_cores > 1) {
                --caps_.max_big_cores;
            }
            caps_.freq_cap_big =
                std::min(caps_.freq_cap_big,
                         big_.quantize(cfg_.thermal_cap_big));
            cooldown_left_ = 2.0 * cfg_.cooldown;
            ++actions_;
        } else if (temp > cfg_.temp_throttle) {
            caps_.freq_cap_big =
                std::min(caps_.freq_cap_big,
                         big_.quantize(cfg_.thermal_cap_big));
            cooldown_left_ = cfg_.cooldown;
            ++actions_;
        }

        // --- Sustained power emergencies: clamp to the deep cap.
        if (over_big_ >= cfg_.power_window) {
            caps_.freq_cap_big = std::min(
                caps_.freq_cap_big, big_.quantize(cfg_.power_cap_big));
            cooldown_left_ = std::max(cooldown_left_, cfg_.cooldown);
            over_big_ = 0.0;
            ++actions_;
        }
        if (over_little_ >= cfg_.power_window) {
            caps_.freq_cap_little =
                std::min(caps_.freq_cap_little,
                         little_.quantize(cfg_.power_cap_little));
            cooldown_left_ = std::max(cooldown_left_, cfg_.cooldown);
            over_little_ = 0.0;
            ++actions_;
        }
    }

    // --- Release: trip-point semantics, like the Exynos driver --
    // once the cooldown has expired and conditions are calm, the
    // frequency caps are lifted outright (hotplugged cores return one
    // at a time and only when cool).
    release_timer_ += dt;
    bool calm = cooldown_left_ <= 0.0 && temp < cfg_.temp_release &&
                p_big < 0.9 * board_.power_limit_big &&
                p_little < 0.9 * board_.power_limit_little;
    if (calm && release_timer_ >= cfg_.release_period) {
        release_timer_ = 0.0;
        caps_.freq_cap_big = big_.maxFreq();
        caps_.freq_cap_little = little_.maxFreq();
        if (caps_.max_big_cores < board_.big.num_cores &&
            temp < cfg_.temp_release - 5.0) {
            ++caps_.max_big_cores;
        }
    }

    caps_.active = caps_.freq_cap_big < big_.maxFreq() - 1e-9 ||
                   caps_.freq_cap_little < little_.maxFreq() - 1e-9 ||
                   caps_.max_big_cores < board_.big.num_cores;
    if (caps_.active) {
        emergency_time_ += dt;
    }
    return caps_;
}

void
Tmu::save(obs::StateWriter& w) const
{
    w.f64("tmu.freq_cap_big", caps_.freq_cap_big);
    w.f64("tmu.freq_cap_little", caps_.freq_cap_little);
    w.u64("tmu.max_big_cores", caps_.max_big_cores);
    w.boolean("tmu.active", caps_.active);
    w.f64("tmu.over_big", over_big_);
    w.f64("tmu.over_little", over_little_);
    w.f64("tmu.action_timer", action_timer_);
    w.f64("tmu.cooldown_left", cooldown_left_);
    w.f64("tmu.release_timer", release_timer_);
    w.f64("tmu.emergency_time", emergency_time_);
    w.u64("tmu.actions", actions_);
}

void
Tmu::load(obs::StateReader& r)
{
    caps_.freq_cap_big = r.f64("tmu.freq_cap_big");
    caps_.freq_cap_little = r.f64("tmu.freq_cap_little");
    caps_.max_big_cores = r.u64("tmu.max_big_cores");
    caps_.active = r.boolean("tmu.active");
    over_big_ = r.f64("tmu.over_big");
    over_little_ = r.f64("tmu.over_little");
    action_timer_ = r.f64("tmu.action_timer");
    cooldown_left_ = r.f64("tmu.cooldown_left");
    release_timer_ = r.f64("tmu.release_timer");
    emergency_time_ = r.f64("tmu.emergency_time");
    actions_ = r.u64("tmu.actions");
}

}  // namespace yukta::platform
