#ifndef YUKTA_PLATFORM_TRACE_IO_H_
#define YUKTA_PLATFORM_TRACE_IO_H_

/**
 * @file
 * CSV serialization for board traces, so bench outputs can be plotted
 * with external tooling and replayed in tests.
 */

#include <iosfwd>
#include <string>
#include <vector>

#include "platform/board.h"

namespace yukta::platform {

/** Writes a trace as CSV (header + one row per sample). */
void writeTraceCsv(std::ostream& os, const std::vector<TraceSample>& trace);

/** Convenience: writes the trace to @p path; returns success. */
bool saveTraceCsv(const std::string& path,
                  const std::vector<TraceSample>& trace);

/**
 * Parses a CSV produced by writeTraceCsv.
 * @throws std::runtime_error on malformed input.
 */
std::vector<TraceSample> readTraceCsv(std::istream& is);

/** Convenience: reads from @p path. @throws on I/O or parse errors. */
std::vector<TraceSample> loadTraceCsv(const std::string& path);

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_TRACE_IO_H_
