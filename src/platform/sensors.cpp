#include "platform/sensors.h"

#include <algorithm>

namespace yukta::platform {

Sensors::Sensors(const SensorConfig& cfg, double ambient,
                 std::uint32_t seed)
    : cfg_(cfg), ambient_(ambient), rng_(seed), temp_(ambient)
{
}

void
Sensors::step(double dt, double true_p_big, double true_p_little,
              double true_temp)
{
    // Power: accumulate the window, publish on completion. Negative
    // raw samples (noise can undershoot near idle) are physically
    // impossible; clamp to zero and count the rejection.
    win_time_ += dt;
    win_big_ += true_p_big * dt;
    win_little_ += true_p_little * dt;
    if (win_time_ >= cfg_.power_period) {
        double avg_big = win_big_ / win_time_;
        double avg_little = win_little_ / win_time_;
        double noise_b = 1.0 + cfg_.power_noise * gauss_(rng_);
        double noise_l = 1.0 + cfg_.power_noise * gauss_(rng_);
        double raw_big = avg_big * noise_b;
        double raw_little = avg_little * noise_l;
        if (raw_big < 0.0 || raw_little < 0.0) {
            ++clamped_power_;
        }
        p_big_ = std::max(0.0, raw_big);
        p_little_ = std::max(0.0, raw_little);
        win_time_ = 0.0;
        win_big_ = 0.0;
        win_little_ = 0.0;
    }

    // Temperature: periodic instantaneous sample with absolute noise,
    // floored at ambient (the die cannot be colder than the air).
    temp_timer_ += dt;
    if (temp_timer_ >= cfg_.temp_period) {
        double raw = true_temp + cfg_.temp_noise * gauss_(rng_);
        if (raw < ambient_) {
            ++clamped_temp_;
        }
        temp_ = std::max(ambient_, raw);
        temp_timer_ = 0.0;
    }
}

void
Sensors::save(obs::StateWriter& w) const
{
    w.rng("sensors.rng", rng_);
    w.rng("sensors.gauss", gauss_);
    w.f64("sensors.p_big", p_big_);
    w.f64("sensors.p_little", p_little_);
    w.f64("sensors.temp", temp_);
    w.f64("sensors.win_time", win_time_);
    w.f64("sensors.win_big", win_big_);
    w.f64("sensors.win_little", win_little_);
    w.f64("sensors.temp_timer", temp_timer_);
    w.u64("sensors.clamped_power", clamped_power_);
    w.u64("sensors.clamped_temp", clamped_temp_);
}

void
Sensors::load(obs::StateReader& r)
{
    r.rng("sensors.rng", rng_);
    r.rng("sensors.gauss", gauss_);
    p_big_ = r.f64("sensors.p_big");
    p_little_ = r.f64("sensors.p_little");
    temp_ = r.f64("sensors.temp");
    win_time_ = r.f64("sensors.win_time");
    win_big_ = r.f64("sensors.win_big");
    win_little_ = r.f64("sensors.win_little");
    temp_timer_ = r.f64("sensors.temp_timer");
    clamped_power_ = r.u64("sensors.clamped_power");
    clamped_temp_ = r.u64("sensors.clamped_temp");
}

}  // namespace yukta::platform
