#include "platform/apps.h"

#include <map>
#include <stdexcept>

namespace yukta::platform {

namespace {

/** PARSEC-style app: serial startup phase, then barriered parallel. */
AppModel
parsecStyle(const std::string& name, double ipc_big, double little_ratio,
            double mem, double serial_work, double parallel_work,
            double activity = 1.0, double coupling = 0.7)
{
    AppModel app;
    app.name = name;
    app.ipc_big = ipc_big;
    app.ipc_little = ipc_big * little_ratio;
    AppPhase serial;
    serial.num_threads = 1;
    serial.work_per_thread = serial_work;
    serial.mem_boundness = mem * 0.8;
    serial.activity = activity;
    AppPhase par;
    par.num_threads = 8;
    par.work_per_thread = parallel_work;
    par.mem_boundness = mem;
    par.activity = activity;
    par.barrier_coupling = coupling;
    app.phases = {serial, par};
    return app;
}

/** SPEC-style workload: 8 independent copies, one phase. */
AppModel
specStyle(const std::string& name, double ipc_big, double little_ratio,
          double mem, double work_per_copy, double activity = 1.0)
{
    AppModel app;
    app.name = name;
    app.ipc_big = ipc_big;
    app.ipc_little = ipc_big * little_ratio;
    AppPhase run;
    run.num_threads = 8;
    run.work_per_thread = work_per_copy;
    run.mem_boundness = mem;
    run.activity = activity;
    run.barrier = false;
    app.phases = {run};
    return app;
}

std::map<std::string, AppModel>
buildCatalog()
{
    std::map<std::string, AppModel> cat;
    auto put = [&cat](AppModel m) { cat[m.name] = std::move(m); };

    // --- Evaluation PARSEC (8 threads, native datasets). ---
    // blackscholes: starts with one thread, then 8 parallel threads
    // with little variation (Sec. VI-A).
    put(parsecStyle("blackscholes", 1.8, 0.33, 0.10, 25.0, 230.0, 1.0, 0.75));
    put(parsecStyle("bodytrack", 1.5, 0.33, 0.25, 18.0, 200.0, 1.05));
    put(parsecStyle("facesim", 1.4, 0.32, 0.30, 22.0, 240.0));
    put(parsecStyle("fluidanimate", 1.6, 0.32, 0.35, 15.0, 210.0, 1.1, 0.8));
    put(parsecStyle("raytrace", 1.9, 0.34, 0.15, 20.0, 260.0));
    put(parsecStyle("canneal", 1.1, 0.42, 0.55, 12.0, 150.0, 0.85));
    put(parsecStyle("streamcluster", 1.0, 0.45, 0.60, 10.0, 140.0, 0.8, 0.85));
    // x264 churns threads between pipeline stages: extra phases.
    {
        AppModel app = parsecStyle("x264", 1.7, 0.33, 0.20, 15.0, 90.0, 1.1, 0.45);
        AppPhase mid;
        mid.num_threads = 5;
        mid.work_per_thread = 60.0;
        mid.mem_boundness = 0.25;
        mid.activity = 1.1;
        AppPhase tail;
        tail.num_threads = 8;
        tail.work_per_thread = 80.0;
        tail.mem_boundness = 0.2;
        tail.activity = 1.1;
        app.phases.push_back(mid);
        app.phases.push_back(tail);
        put(app);
    }

    // --- Evaluation SPEC06 (8 copies, train datasets). ---
    put(specStyle("h264ref", 1.9, 0.33, 0.15, 220.0, 1.05));
    put(specStyle("mcf", 0.8, 0.48, 0.70, 110.0, 0.75));
    put(specStyle("omnetpp", 1.0, 0.42, 0.50, 130.0, 0.85));
    put(specStyle("gamess", 2.0, 0.32, 0.10, 260.0, 1.1));
    put(specStyle("gromacs", 1.8, 0.32, 0.15, 230.0, 1.05));
    put(specStyle("dealII", 1.6, 0.35, 0.30, 200.0));

    // --- Training set (disjoint from evaluation, Sec. V-A). ---
    put(parsecStyle("swaptions", 1.8, 0.33, 0.10, 12.0, 160.0));
    put(parsecStyle("vips", 1.5, 0.33, 0.30, 14.0, 170.0));
    put(specStyle("astar", 1.1, 0.42, 0.45, 120.0, 0.9));
    put(specStyle("perlbench", 1.5, 0.34, 0.25, 170.0));
    put(specStyle("milc", 0.9, 0.46, 0.60, 100.0, 0.8));
    put(specStyle("namd", 1.9, 0.32, 0.10, 240.0, 1.05));

    return cat;
}

const std::map<std::string, AppModel>&
catalog()
{
    static const std::map<std::string, AppModel> cat = buildCatalog();
    return cat;
}

}  // namespace

AppModel
AppCatalog::get(const std::string& name)
{
    auto it = catalog().find(name);
    if (it == catalog().end()) {
        throw std::invalid_argument("AppCatalog: unknown app " + name);
    }
    return it->second;
}

AppModel
AppCatalog::makeServiceApp(std::size_t threads, double ipc_big,
                           double mem_boundness)
{
    if (threads == 0) {
        throw std::invalid_argument("makeServiceApp: zero threads");
    }
    AppModel app;
    app.name = "service";
    app.ipc_big = ipc_big;
    app.ipc_little = ipc_big * 0.38;
    AppPhase serve;
    serve.num_threads = threads;
    // ~3 years of work at 10 BIPS: finite (workRemaining() stays
    // meaningful) but unreachable within any simulated fleet run.
    serve.work_per_thread = 1.0e9 / static_cast<double>(threads);
    serve.mem_boundness = mem_boundness;
    serve.activity = 1.0;
    serve.barrier = false;
    app.phases = {serve};
    return app;
}

AppModel
AppCatalog::getWithThreads(const std::string& name, std::size_t threads)
{
    AppModel app = get(name);
    if (threads == 0) {
        throw std::invalid_argument("AppCatalog: zero threads");
    }
    for (AppPhase& ph : app.phases) {
        if (ph.num_threads > 1) {
            // Keep total phase work comparable while changing the
            // thread count.
            double total = ph.work_per_thread *
                           static_cast<double>(ph.num_threads);
            ph.num_threads = threads;
            ph.work_per_thread = total / static_cast<double>(threads);
        }
    }
    return app;
}

std::vector<std::string>
AppCatalog::specApps()
{
    return {"h264ref", "mcf", "omnetpp", "gamess", "gromacs", "dealII"};
}

std::vector<std::string>
AppCatalog::parsecApps()
{
    return {"blackscholes", "bodytrack", "facesim", "fluidanimate",
            "raytrace",     "x264",      "canneal", "streamcluster"};
}

std::vector<std::string>
AppCatalog::trainingApps()
{
    return {"swaptions", "vips", "astar", "perlbench", "milc", "namd"};
}

std::vector<std::string>
AppCatalog::evaluationApps()
{
    std::vector<std::string> all = specApps();
    for (const auto& p : parsecApps()) {
        all.push_back(p);
    }
    return all;
}

std::vector<std::string>
AppCatalog::mixNames()
{
    return {"blmc", "stga", "blst", "mcga"};
}

Workload
AppCatalog::getMix(const std::string& mix)
{
    auto half = [](const std::string& name) {
        return getWithThreads(name, 4);
    };
    if (mix == "blmc") {
        return Workload({half("blackscholes"), half("mcf")});
    }
    if (mix == "stga") {
        return Workload({half("streamcluster"), half("gamess")});
    }
    if (mix == "blst") {
        return Workload({half("blackscholes"), half("streamcluster")});
    }
    if (mix == "mcga") {
        return Workload({half("mcf"), half("gamess")});
    }
    throw std::invalid_argument("AppCatalog: unknown mix " + mix);
}

std::string
AppCatalog::shortLabel(const std::string& name)
{
    if (name.size() <= 3) {
        return name;
    }
    if (name == "dealII") {
        return "dea";
    }
    return name.substr(0, 3);
}

}  // namespace yukta::platform
