#ifndef YUKTA_PLATFORM_SENSORS_H_
#define YUKTA_PLATFORM_SENSORS_H_

/**
 * @file
 * On-board sensors. The XU3's power sensors (INA231) update every
 * ~260 ms; controllers therefore see windowed averages, not
 * instantaneous power — the paper picks its 500 ms control period
 * from this. Temperature is sampled faster; performance counters
 * (instructions retired) are continuous counters read by perf.
 */

#include <cstdint>
#include <random>

#include "platform/config.h"

namespace yukta::platform {

/** Sampled sensor front-end fed by the board's true signals. */
class Sensors
{
  public:
    /** Builds the front-end; @p seed drives the noise generator. */
    Sensors(const SensorConfig& cfg, std::uint32_t seed);

    /**
     * Advances the sensor state by @p dt with the current true
     * values.
     */
    void step(double dt, double true_p_big, double true_p_little,
              double true_temp);

    /** @return last completed power-window average, big cluster (W). */
    double powerBig() const { return p_big_; }

    /** @return last completed power-window average, little (W). */
    double powerLittle() const { return p_little_; }

    /** @return last temperature sample (C). */
    double temperature() const { return temp_; }

  private:
    SensorConfig cfg_;
    std::mt19937 rng_;
    std::normal_distribution<double> gauss_{0.0, 1.0};

    double p_big_ = 0.0;
    double p_little_ = 0.0;
    double temp_ = 25.0;

    double win_time_ = 0.0;
    double win_big_ = 0.0;
    double win_little_ = 0.0;
    double temp_timer_ = 0.0;
};

/** Per-cluster instructions-retired counters (perf-style). */
struct PerfCounters
{
    double instr_big = 0.0;     ///< Giga-instructions retired, big.
    double instr_little = 0.0;  ///< Giga-instructions retired, little.

    /** @return total giga-instructions retired across clusters. */
    double total() const { return instr_big + instr_little; }
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_SENSORS_H_
