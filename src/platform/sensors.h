#ifndef YUKTA_PLATFORM_SENSORS_H_
#define YUKTA_PLATFORM_SENSORS_H_

/**
 * @file
 * On-board sensors. The XU3's power sensors (INA231) update every
 * ~260 ms; controllers therefore see windowed averages, not
 * instantaneous power — the paper picks its 500 ms control period
 * from this. Temperature is sampled faster; performance counters
 * (instructions retired) are continuous counters read by perf.
 *
 * Physically impossible raw readings (negative power, temperature
 * below ambient) are clamped at the source and counted, instead of
 * being passed through silently: real sensor drivers reject such
 * samples, and downstream validators (controllers/supervisor.h) rely
 * on clean telemetry meaning "plausible", so corruption past this
 * point is attributable to fault injection, not the sensor model.
 */

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <random>

#include "obs/stateio.h"
#include "platform/config.h"

namespace yukta::platform {

/**
 * One complete sensor snapshot as a privileged process reads it each
 * control period: windowed cluster powers, the latest temperature
 * sample, and the cumulative per-cluster instruction counters.
 *
 * This is the boundary type the fault layer (src/fault/) corrupts and
 * the supervisor validates. Construct it only inside the platform and
 * fault layers (yukta-lint rule sensor-construction); everything else
 * receives instances from Board::readings() or by copy.
 */
struct SensorReadings
{
    double p_big = 0.0;        ///< Windowed big-cluster power (W).
    double p_little = 0.0;     ///< Windowed little-cluster power (W).
    double temp = 25.0;        ///< Latest temperature sample (C).
    double instr_big = 0.0;    ///< Cumulative giga-instr, big.
    double instr_little = 0.0; ///< Cumulative giga-instr, little.
};

/** Finite-check customization point (core/contracts.h, via ADL). */
inline bool yuktaAllFinite(const SensorReadings& r)
{
    return std::isfinite(r.p_big) && std::isfinite(r.p_little) &&
           std::isfinite(r.temp) && std::isfinite(r.instr_big) &&
           std::isfinite(r.instr_little);
}

/** Sampled sensor front-end fed by the board's true signals. */
class Sensors
{
  public:
    /**
     * Builds the front-end; @p ambient floors temperature samples
     * (a heatsink cannot read below the air around it) and @p seed
     * drives the noise generator.
     */
    Sensors(const SensorConfig& cfg, double ambient, std::uint32_t seed);

    /**
     * Advances the sensor state by @p dt with the current true
     * values.
     */
    void step(double dt, double true_p_big, double true_p_little,
              double true_temp);

    /** @return last completed power-window average, big cluster (W). */
    double powerBig() const { return p_big_; }

    /** @return last completed power-window average, little (W). */
    double powerLittle() const { return p_little_; }

    /** @return last temperature sample (C). */
    double temperature() const { return temp_; }

    /** @return samples clamped for physically negative power. */
    std::size_t clampedPowerCount() const { return clamped_power_; }

    /** @return samples clamped for temperature below ambient. */
    std::size_t clampedTempCount() const { return clamped_temp_; }

    /** Appends all mutable sensor state (incl. the RNG) to @p w. */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save. */
    void load(obs::StateReader& r);

  private:
    SensorConfig cfg_;
    double ambient_ = 25.0;
    std::mt19937 rng_;
    std::normal_distribution<double> gauss_{0.0, 1.0};

    double p_big_ = 0.0;
    double p_little_ = 0.0;
    double temp_ = 25.0;

    double win_time_ = 0.0;
    double win_big_ = 0.0;
    double win_little_ = 0.0;
    double temp_timer_ = 0.0;

    std::size_t clamped_power_ = 0;
    std::size_t clamped_temp_ = 0;
};

/** Per-cluster instructions-retired counters (perf-style). */
struct PerfCounters
{
    double instr_big = 0.0;     ///< Giga-instructions retired, big.
    double instr_little = 0.0;  ///< Giga-instructions retired, little.

    /** @return total giga-instructions retired across clusters. */
    double total() const { return instr_big + instr_little; }
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_SENSORS_H_
