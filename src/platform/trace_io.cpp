#include "platform/trace_io.h"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace yukta::platform {

namespace {

constexpr const char* kHeader =
    "time,p_big,p_little,temp,bips,f_big,f_little,big_cores,little_cores,"
    "threads,emergency";

}  // namespace

void
writeTraceCsv(std::ostream& os, const std::vector<TraceSample>& trace)
{
    os << kHeader << "\n" << std::setprecision(10);
    for (const TraceSample& s : trace) {
        os << s.time << ',' << s.p_big << ',' << s.p_little << ','
           << s.temp << ',' << s.bips << ',' << s.f_big << ','
           << s.f_little << ',' << s.big_cores << ',' << s.little_cores
           << ',' << s.threads << ',' << (s.emergency ? 1 : 0) << "\n";
    }
}

bool
saveTraceCsv(const std::string& path, const std::vector<TraceSample>& trace)
{
    // The platform layer sits below core's cache helpers, so it cannot
    // publish through atomicWriteFile; callers gate on the returned
    // bool instead. yukta-lint: allow(atomic-write)
    std::ofstream os(path);
    if (!os) {
        return false;
    }
    writeTraceCsv(os, trace);
    return static_cast<bool>(os);
}

std::vector<TraceSample>
readTraceCsv(std::istream& is)
{
    std::string line;
    if (!std::getline(is, line) || line != kHeader) {
        throw std::runtime_error("readTraceCsv: bad or missing header");
    }
    std::vector<TraceSample> out;
    while (std::getline(is, line)) {
        if (line.empty()) {
            continue;
        }
        std::istringstream row(line);
        TraceSample s;
        char comma = 0;
        int emergency = 0;
        if (!(row >> s.time >> comma >> s.p_big >> comma >> s.p_little >>
              comma >> s.temp >> comma >> s.bips >> comma >> s.f_big >>
              comma >> s.f_little >> comma >> s.big_cores >> comma >>
              s.little_cores >> comma >> s.threads >> comma >>
              emergency)) {
            throw std::runtime_error("readTraceCsv: malformed row: " +
                                     line);
        }
        s.emergency = emergency != 0;
        out.push_back(s);
    }
    return out;
}

std::vector<TraceSample>
loadTraceCsv(const std::string& path)
{
    std::ifstream is(path);
    if (!is) {
        throw std::runtime_error("loadTraceCsv: cannot open " + path);
    }
    return readTraceCsv(is);
}

}  // namespace yukta::platform
