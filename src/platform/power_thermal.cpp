#include "platform/power_thermal.h"

#include <algorithm>
#include <cmath>

namespace yukta::platform {

PowerModel::PowerModel(const ClusterConfig& cfg, const DvfsTable& dvfs)
    : cfg_(cfg), dvfs_(dvfs)
{
}

double
PowerModel::dynamicPower(const ClusterActivity& act) const
{
    if (act.cores_on == 0) {
        return 0.0;
    }
    double f = dvfs_.quantize(act.freq);
    double v = dvfs_.voltage(f);
    double per_core = cfg_.ceff * act.activity * v * v * f *
                      std::clamp(act.avg_utilization, 0.0, 1.0);
    return per_core * static_cast<double>(act.cores_on);
}

double
PowerModel::leakagePower(const ClusterActivity& act, double temp) const
{
    if (act.cores_on == 0) {
        return 0.0;
    }
    double f = dvfs_.quantize(act.freq);
    double v = dvfs_.voltage(f);
    double scale = v / cfg_.volt_max;
    double thermal = 1.0 + cfg_.leak_tc * (temp - kLeakRefTemp);
    return cfg_.leak_ref * scale * std::max(thermal, 0.2) *
           static_cast<double>(act.cores_on);
}

double
PowerModel::clusterPower(const ClusterActivity& act, double temp) const
{
    double uncore = act.cores_on > 0 ? cfg_.uncore : 0.0;
    return dynamicPower(act) + leakagePower(act, temp) + uncore;
}

ThermalModel::ThermalModel(const ThermalConfig& cfg) : cfg_(cfg)
{
    reset();
}

void
ThermalModel::reset()
{
    t_silicon_ = cfg_.ambient;
    t_heatsink_ = cfg_.ambient;
}

void
ThermalModel::step(double weighted_power, double dt)
{
    // Silicon relaxes toward heatsink + P * R_si; heatsink toward
    // ambient + P * R_hs.
    double target_si = t_heatsink_ + weighted_power * cfg_.r_silicon;
    double target_hs = cfg_.ambient + weighted_power * cfg_.r_heatsink;
    double a1 = 1.0 - std::exp(-dt / cfg_.tau_silicon);
    double a2 = 1.0 - std::exp(-dt / cfg_.tau_heatsink);
    t_silicon_ += a1 * (target_si - t_silicon_);
    t_heatsink_ += a2 * (target_hs - t_heatsink_);
}

double
ThermalModel::steadyState(double weighted_power) const
{
    return cfg_.ambient +
           weighted_power * (cfg_.r_silicon + cfg_.r_heatsink);
}

}  // namespace yukta::platform
