#ifndef YUKTA_PLATFORM_TMU_H_
#define YUKTA_PLATFORM_TMU_H_

/**
 * @file
 * Emergency thermal/power management heuristics, modeled after the
 * Exynos TMU driver (threshold rules with hysteresis). These fire
 * when sustained power or temperature exceeds preset trip points and
 * override whatever the resource controllers requested — exactly the
 * emergency system the paper's evaluation works underneath
 * (Sec. V-A), and the mechanism that produces the Decoupled
 * heuristic's power oscillations (Fig. 10(b)).
 */

#include <cstddef>

#include "obs/stateio.h"
#include "platform/config.h"
#include "platform/dvfs.h"

namespace yukta::platform {

/** Emergency caps currently in force (applied on top of requests). */
struct EmergencyCaps
{
    double freq_cap_big = 1e9;      ///< GHz; huge when inactive.
    double freq_cap_little = 1e9;   ///< GHz.
    std::size_t max_big_cores = 4;  ///< Forced hotplug limit.
    bool active = false;            ///< Any cap in force.
};

/** Threshold-based emergency controller. */
class Tmu
{
  public:
    /** Builds the TMU from its thresholds and the DVFS tables. */
    Tmu(const TmuConfig& cfg, const BoardConfig& board,
        const DvfsTable& big, const DvfsTable& little);

    /**
     * Advances the emergency logic by @p dt and returns the caps.
     *
     * @param temp current hot-spot temperature (C, true value: the
     *   TMU has its own fast sensor path).
     * @param p_big, p_little current true cluster powers (W).
     * @param f_big, f_little currently applied frequencies (GHz).
     */
    EmergencyCaps step(double dt, double temp, double p_big, double p_little,
                       double f_big, double f_little);

    /** @return the caps currently in force. */
    const EmergencyCaps& caps() const { return caps_; }

    /** @return total time spent with any emergency active (s). */
    double emergencyTime() const { return emergency_time_; }

    /** @return number of emergency actions taken. */
    std::size_t actionCount() const { return actions_; }

    /** Appends all mutable TMU state to @p w. */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save. */
    void load(obs::StateReader& r);

  private:
    TmuConfig cfg_;
    BoardConfig board_;   ///< Owned copies keep the Tmu movable.
    DvfsTable big_;
    DvfsTable little_;

    EmergencyCaps caps_;
    double over_big_ = 0.0;     ///< Sustained big-power excess timer.
    double over_little_ = 0.0;  ///< Sustained little-power excess timer.
    double action_timer_ = 0.0;
    double cooldown_left_ = 0.0;   ///< Hold time before releases.
    double release_timer_ = 0.0;
    double emergency_time_ = 0.0;
    std::size_t actions_ = 0;
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_TMU_H_
