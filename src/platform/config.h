#ifndef YUKTA_PLATFORM_CONFIG_H_
#define YUKTA_PLATFORM_CONFIG_H_

/**
 * @file
 * Board configuration for the simulated ODROID XU3 (Samsung Exynos
 * 5422): a big cluster of four out-of-order cores (Cortex-A15 class)
 * and a little cluster of four in-order cores (Cortex-A7 class).
 *
 * The defaults are calibrated so that the paper's operating limits
 * (P_big < 3.3 W, P_little < 0.33 W, T < 79 C) bind in the same
 * places they do on the real board: the big cluster exceeds 3.3 W
 * above ~1.3 GHz with four busy cores, the little cluster exceeds
 * 0.33 W near its top frequencies, and sustained maximum power pushes
 * the hot spot toward the high 70s C.
 */

#include <cstddef>

namespace yukta::platform {

/** Identifies one of the two clusters. */
enum class ClusterId { kBig = 0, kLittle = 1 };

/** Static parameters of one cluster. */
struct ClusterConfig
{
    std::size_t num_cores = 4;  ///< Physical cores.
    double freq_min = 0.2;      ///< GHz.
    double freq_max = 2.0;      ///< GHz.
    double freq_step = 0.1;     ///< GHz.

    double volt_min = 0.90;     ///< V at freq_min.
    double volt_max = 1.36;     ///< V at freq_max.

    /** Effective switched capacitance (W / (GHz * V^2)) per core. */
    double ceff = 0.33;

    /** Leakage per powered core at the reference temperature (W). */
    double leak_ref = 0.12;

    /** Leakage temperature coefficient (1/C). */
    double leak_tc = 0.010;

    /** Uncore/fabric power when the cluster is active (W). */
    double uncore = 0.25;

    /** Thermal weight: contribution of this cluster to the hot spot. */
    double thermal_weight = 1.0;
};

/** Thermal RC model parameters (two-node: silicon + heatsink). */
struct ThermalConfig
{
    double ambient = 25.0;     ///< C.
    double r_silicon = 6.0;    ///< C/W silicon above heatsink.
    double r_heatsink = 3.0;   ///< C/W heatsink above ambient.
    double tau_silicon = 2.0;  ///< s.
    double tau_heatsink = 30.0;  ///< s.
};

/** Emergency (TMU-style) heuristics thresholds, per the Exynos TMU. */
struct TmuConfig
{
    double temp_throttle = 85.0;   ///< C: start forced DVFS cuts.
    double temp_hotplug = 95.0;    ///< C: start forcing big cores off.
    double temp_release = 80.0;    ///< C: hysteresis release point.
    double power_margin = 1.30;    ///< Fraction of limit that trips:
                                   ///< the paper picks its 3.3 W /
                                   ///< 0.33 W limits *below* the
                                   ///< emergency thresholds.
    double power_window = 0.6;     ///< s of sustained excess to trip.
    double action_period = 0.1;    ///< s between emergency actions.

    /** Depth of an emergency frequency cut (GHz caps). */
    double power_cap_big = 0.3;
    double power_cap_little = 0.3;
    double thermal_cap_big = 0.3;

    /** Seconds a cap is held before any release is considered. */
    double cooldown = 5.0;

    /** Seconds between release steps once calm. */
    double release_period = 0.8;
};

/** Sensor characteristics (the XU3's INA231 sensors update slowly). */
struct SensorConfig
{
    double power_period = 0.260;  ///< s between power sensor updates.
    double temp_period = 0.100;   ///< s between temperature samples.
    double power_noise = 0.01;    ///< Relative measurement noise.
    double temp_noise = 0.3;      ///< Absolute C noise (std dev).
};

/** Complete board configuration. */
struct BoardConfig
{
    ClusterConfig big;
    ClusterConfig little;
    ThermalConfig thermal;
    TmuConfig tmu;
    SensorConfig sensors;

    double time_step = 1e-3;      ///< Simulation step (s).
    double power_limit_big = 3.3;     ///< W (paper Sec. V-A).
    double power_limit_little = 0.33;  ///< W.
    double temp_limit = 79.0;          ///< C.

    /** Thread migration stall when placement changes (s). */
    double migration_stall = 3e-3;

    /** @return the default XU3-like configuration. */
    static BoardConfig odroidXu3();
};

}  // namespace yukta::platform

#endif  // YUKTA_PLATFORM_CONFIG_H_
