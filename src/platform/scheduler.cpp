#include "platform/scheduler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yukta::platform {

std::size_t
Placement::threadsOn(ClusterId c) const
{
    std::size_t n = 0;
    for (ClusterId tc : thread_cluster) {
        if (tc == c) {
            ++n;
        }
    }
    return n;
}

std::size_t
Placement::busyCores(ClusterId c) const
{
    const auto& counts =
        c == ClusterId::kBig ? big_core_threads : little_core_threads;
    std::size_t n = 0;
    for (std::size_t t : counts) {
        if (t > 0) {
            ++n;
        }
    }
    return n;
}

std::size_t
Placement::idleCoresOn(ClusterId c) const
{
    const auto& counts =
        c == ClusterId::kBig ? big_core_threads : little_core_threads;
    return counts.size() - busyCores(c);
}

namespace {

/**
 * Distributes @p threads over at most @p cores_on cores targeting
 * @p tpc threads per busy core; returns per-core counts.
 */
std::vector<std::size_t>
distribute(std::size_t threads, double tpc, std::size_t cores_on)
{
    std::vector<std::size_t> counts(cores_on, 0);
    if (threads == 0 || cores_on == 0) {
        return counts;
    }
    double tpc_eff = std::max(tpc, 1.0);
    std::size_t want_cores = static_cast<std::size_t>(
        std::ceil(static_cast<double>(threads) / tpc_eff));
    std::size_t use_cores = std::clamp<std::size_t>(want_cores, 1, cores_on);
    for (std::size_t t = 0; t < threads; ++t) {
        counts[t % use_cores] += 1;
    }
    return counts;
}

}  // namespace

Placement
placeThreads(const PlacementPolicy& policy, std::size_t num_threads,
             std::size_t big_on, std::size_t little_on)
{
    if (big_on == 0 && little_on == 0) {
        throw std::invalid_argument("placeThreads: no powered cores");
    }
    Placement p;
    // Round/clamp the policy to feasibility.
    double want_big = std::round(policy.threads_big);
    std::size_t nb = static_cast<std::size_t>(
        std::clamp(want_big, 0.0, static_cast<double>(num_threads)));
    if (big_on == 0) {
        nb = 0;
    }
    if (little_on == 0) {
        nb = num_threads;
    }
    std::size_t nl = num_threads - nb;

    p.big_core_threads = distribute(nb, policy.tpc_big, big_on);
    p.little_core_threads = distribute(nl, policy.tpc_little, little_on);

    // Dense thread -> core map: big-cluster threads first (workload
    // instance order decides which threads these are).
    p.thread_cluster.resize(num_threads);
    p.thread_core.resize(num_threads);
    std::size_t tid = 0;
    for (std::size_t repeat = 0; tid < nb; ++repeat) {
        for (std::size_t core = 0; core < p.big_core_threads.size() &&
                                   tid < nb;
             ++core) {
            if (p.big_core_threads[core] > repeat) {
                p.thread_cluster[tid] = ClusterId::kBig;
                p.thread_core[tid] = core;
                ++tid;
            }
        }
    }
    for (std::size_t repeat = 0; tid < num_threads; ++repeat) {
        for (std::size_t core = 0;
             core < p.little_core_threads.size() && tid < num_threads;
             ++core) {
            if (p.little_core_threads[core] > repeat) {
                p.thread_cluster[tid] = ClusterId::kLittle;
                p.thread_core[tid] = core;
                ++tid;
            }
        }
    }
    return p;
}

PlacementPolicy
roundRobinPolicy(std::size_t num_threads, std::size_t big_on,
                 std::size_t little_on)
{
    PlacementPolicy policy;
    std::size_t total = big_on + little_on;
    if (total == 0) {
        return policy;
    }
    policy.threads_big = static_cast<double>(num_threads) *
                         static_cast<double>(big_on) /
                         static_cast<double>(total);
    double per_core =
        std::max(1.0, std::ceil(static_cast<double>(num_threads) /
                                static_cast<double>(total)));
    policy.tpc_big = per_core;
    policy.tpc_little = per_core;
    return policy;
}

double
spareCompute(const Placement& p, ClusterId c, std::size_t cores_on)
{
    double idle_on = static_cast<double>(p.idleCoresOn(c));
    double threads = static_cast<double>(p.threadsOn(c));
    return idle_on - (threads - static_cast<double>(cores_on));
}

}  // namespace yukta::platform
