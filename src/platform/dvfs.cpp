#include "platform/dvfs.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yukta::platform {

DvfsTable::DvfsTable(const ClusterConfig& cfg)
    : volt_min_(cfg.volt_min), volt_max_(cfg.volt_max)
{
    if (cfg.freq_max <= cfg.freq_min || cfg.freq_step <= 0.0) {
        throw std::invalid_argument("DvfsTable: bad frequency range");
    }
    for (double f = cfg.freq_min; f <= cfg.freq_max + 1e-9;
         f += cfg.freq_step) {
        freqs_.push_back(std::round(f * 10.0) / 10.0);
    }
}

std::size_t
DvfsTable::indexOf(double f) const
{
    // Closest grid point.
    std::size_t best = 0;
    double best_d = 1e300;
    for (std::size_t i = 0; i < freqs_.size(); ++i) {
        double d = std::abs(freqs_[i] - f);
        if (d < best_d) {
            best_d = d;
            best = i;
        }
    }
    return best;
}

double
DvfsTable::quantize(double f) const
{
    return freqs_[indexOf(f)];
}

double
DvfsTable::voltage(double f) const
{
    double fq = quantize(f);
    double span = freqs_.back() - freqs_.front();
    double frac = span > 0.0 ? (fq - freqs_.front()) / span : 0.0;
    return volt_min_ + frac * (volt_max_ - volt_min_);
}

double
DvfsTable::stepDown(double f, std::size_t levels) const
{
    std::size_t i = indexOf(f);
    return freqs_[i >= levels ? i - levels : 0];
}

double
DvfsTable::stepUp(double f, std::size_t levels) const
{
    std::size_t i = indexOf(f) + levels;
    return freqs_[std::min(i, freqs_.size() - 1)];
}

}  // namespace yukta::platform
