#ifndef YUKTA_FAULT_PLAN_H_
#define YUKTA_FAULT_PLAN_H_

/**
 * @file
 * Declarative fault schedules. A FaultPlan is a seeded list of fault
 * windows, each corrupting one target (a sensor signal, the actuation
 * path, or the control-tick timing) with one fault kind over a
 * simulated-time interval. Plans parse from a compact spec string so
 * sweeps can carry them in run keys and JSONL records:
 *
 *   seed=7;p_big:nan@20+10;temp:stuck@40+15;act:ignore@60+5
 *
 * Grammar (';'-separated entries, no whitespace):
 *   seed=<uint>                       RNG seed (default 1)
 *   <target>:<kind>@<start>+<duration>[*<magnitude>]
 *
 * Targets: p_big p_little temp perf_big perf_little all act tick,
 * plus the fleet-level machine namespace board<i> (board0, board1,
 * ...), addressing board i of a fleet run.
 * Sensor kinds (p_*, temp, perf_*, all):
 *   nan    reading becomes NaN
 *   inf    reading becomes +Inf
 *   stuck  reading latches the value at window entry
 *   freeze alias of stuck, intended for `all` (stale snapshot)
 *   spike  reading is multiplied by magnitude (default 8) with
 *          seeded per-tick jitter
 *   drop   reading becomes 0 (sensor dropout)
 * Actuator kinds (act):
 *   ignore     commands in the window are discarded (previous kept)
 *   partial    commands apply fractionally: prev + mag*(cmd - prev),
 *              magnitude in (0,1], default 0.3
 *   quantstuck DVFS writes are ignored (frequencies latch), core and
 *              placement commands still apply
 * Timing kinds (tick):
 *   miss    every control tick in the window is skipped
 *   double  every second tick is skipped (period doubles)
 * Machine kinds (board<i>):
 *   crash    board dark for the window: queue dropped (magnitude
 *            absent) or preserved (any positive magnitude), then a
 *            cold reboot through the supervisor ladder at window end
 *   degrade  board capacity cut to magnitude (remaining fraction in
 *            (0,1], default 0.5) for the window
 *   hang     the shard worker stepping the board stalls mid-epoch;
 *            transient (resolves on retry) when magnitude is absent,
 *            persistent for the whole window when positive
 *   drift    the board's plant drifts: true cluster power scales by
 *            magnitude (> 0, default 1.8) for the window -- silicon
 *            aging / thermal-paste degradation, the scenario online
 *            adaptation re-identifies and re-synthesizes for
 */

#include <cstdint>
#include <string>
#include <vector>

namespace yukta::fault {

/** What a fault window corrupts. */
enum class FaultTarget
{
    kPowerBig,    ///< Big-cluster power sensor.
    kPowerLittle, ///< Little-cluster power sensor.
    kTemp,        ///< Temperature sensor.
    kPerfBig,     ///< Big-cluster instruction counter.
    kPerfLittle,  ///< Little-cluster instruction counter.
    kAll,         ///< The whole sensor bundle.
    kActuator,    ///< The actuation path (HW inputs + placement).
    kTiming,      ///< The control-tick schedule.
    kBoard,       ///< A whole fleet board (machine-level fault).
};

/** How the target misbehaves inside the window. */
enum class FaultKind
{
    kNan,        ///< Sensor: NaN.
    kInf,        ///< Sensor: +Inf.
    kStuck,      ///< Sensor: stuck at the value on window entry.
    kFreeze,     ///< Sensor: same latch; spelled for stale bundles.
    kSpike,      ///< Sensor: multiplied by magnitude, seeded jitter.
    kDrop,       ///< Sensor: dropout to zero.
    kActIgnore,  ///< Actuator: command discarded.
    kActPartial, ///< Actuator: fractional application.
    kActQuantStuck, ///< Actuator: DVFS writes ignored.
    kTickMiss,   ///< Timing: tick skipped.
    kTickDouble, ///< Timing: every second tick skipped.
    kBoardCrash,   ///< Machine: board dark, then cold reboot.
    kBoardDegrade, ///< Machine: capacity cut to magnitude.
    kShardHang,    ///< Machine: shard worker stalls mid-epoch.
    kBoardDrift,   ///< Machine: plant power scales by magnitude.
};

/** @return the spec-string id of @p target (e.g. "p_big"). */
std::string faultTargetId(FaultTarget target);

/** @return the spec-string id of @p kind (e.g. "nan"). */
std::string faultKindId(FaultKind kind);

/** One scheduled fault: target, kind, and the time window. */
struct FaultWindow
{
    FaultTarget target = FaultTarget::kAll;
    FaultKind kind = FaultKind::kFreeze;
    double start = 0.0;      ///< Simulated seconds.
    double duration = 0.0;   ///< Simulated seconds (> 0).
    double magnitude = 0.0;  ///< 0 = kind-specific default.
    int board = -1;          ///< Board index for kBoard targets.

    /** @return true when @p t falls inside the window. */
    bool active(double t) const
    {
        return t >= start && t < start + duration;
    }
};

/** A complete, seeded fault schedule. */
struct FaultPlan
{
    std::uint32_t seed = 1;
    std::vector<FaultWindow> windows;

    /** @return true when the plan schedules nothing. */
    bool empty() const { return windows.empty(); }

    /**
     * @return the normalized spec string (stable across parse
     * round-trips; suitable for run keys and logs).
     */
    std::string canonical() const;

    /**
     * Parses a spec string (see the file comment for the grammar).
     * An empty string yields an empty plan.
     * @throws std::invalid_argument on malformed entries, unknown
     * targets/kinds, kind/target class mismatches, or non-positive
     * durations. Errors name the byte offset of the offending clause
     * in @p spec and quote the clause text.
     */
    static FaultPlan parse(const std::string& spec);
};

}  // namespace yukta::fault

#endif  // YUKTA_FAULT_PLAN_H_
