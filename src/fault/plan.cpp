#include "fault/plan.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace yukta::fault {

namespace {

/** Fault classes; a kind is only valid on targets of its class. */
enum class Class
{
    kSensor,
    kActuator,
    kTiming,
};

Class
targetClass(FaultTarget t)
{
    switch (t) {
      case FaultTarget::kActuator:
        return Class::kActuator;
      case FaultTarget::kTiming:
        return Class::kTiming;
      default:
        return Class::kSensor;
    }
}

Class
kindClass(FaultKind k)
{
    switch (k) {
      case FaultKind::kActIgnore:
      case FaultKind::kActPartial:
      case FaultKind::kActQuantStuck:
        return Class::kActuator;
      case FaultKind::kTickMiss:
      case FaultKind::kTickDouble:
        return Class::kTiming;
      default:
        return Class::kSensor;
    }
}

struct TargetName
{
    const char* id;
    FaultTarget target;
};

struct KindName
{
    const char* id;
    FaultKind kind;
};

constexpr TargetName kTargets[] = {
    {"p_big", FaultTarget::kPowerBig},
    {"p_little", FaultTarget::kPowerLittle},
    {"temp", FaultTarget::kTemp},
    {"perf_big", FaultTarget::kPerfBig},
    {"perf_little", FaultTarget::kPerfLittle},
    {"all", FaultTarget::kAll},
    {"act", FaultTarget::kActuator},
    {"tick", FaultTarget::kTiming},
};

constexpr KindName kKinds[] = {
    {"nan", FaultKind::kNan},
    {"inf", FaultKind::kInf},
    {"stuck", FaultKind::kStuck},
    {"freeze", FaultKind::kFreeze},
    {"spike", FaultKind::kSpike},
    {"drop", FaultKind::kDrop},
    {"ignore", FaultKind::kActIgnore},
    {"partial", FaultKind::kActPartial},
    {"quantstuck", FaultKind::kActQuantStuck},
    {"miss", FaultKind::kTickMiss},
    {"double", FaultKind::kTickDouble},
};

[[noreturn]] void
bad(const std::string& entry, const std::string& why)
{
    throw std::invalid_argument("FaultPlan::parse: '" + entry + "': " +
                                why);
}

double
parseNumber(const std::string& entry, const std::string& text,
            const std::string& what)
{
    // strtod alone is too permissive for a schedule grammar: it
    // accepts "nan", "inf"/"infinity", hex floats ("0x10"), and
    // leading whitespace. Restrict to plain decimal notation and
    // require a finite value.
    if (text.empty()) {
        bad(entry, "missing " + what);
    }
    for (char c : text) {
        const bool ok = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                        c == 'E' || c == '+' || c == '-';
        if (!ok) {
            bad(entry, "malformed " + what + " '" + text + "'");
        }
    }
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
        bad(entry, "malformed " + what + " '" + text + "'");
    }
    return v;
}

std::string
formatNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

}  // namespace

std::string
faultTargetId(FaultTarget target)
{
    for (const TargetName& t : kTargets) {
        if (t.target == target) {
            return t.id;
        }
    }
    return "unknown";
}

std::string
faultKindId(FaultKind kind)
{
    for (const KindName& k : kKinds) {
        if (k.kind == kind) {
            return k.id;
        }
    }
    return "unknown";
}

std::string
FaultPlan::canonical() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    for (const FaultWindow& w : windows) {
        os << ";" << faultTargetId(w.target) << ":" << faultKindId(w.kind)
           << "@" << formatNumber(w.start) << "+"
           << formatNumber(w.duration);
        if (w.magnitude > 0.0) {
            os << "*" << formatNumber(w.magnitude);
        }
    }
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    std::stringstream ss(spec);
    std::string entry;
    while (std::getline(ss, entry, ';')) {
        if (entry.empty()) {
            bad(spec, "empty clause (stray ';')");
        }
        if (entry.rfind("seed=", 0) == 0) {
            // Plain decimal digits only; strtoul would also accept
            // whitespace and a sign.
            const std::string v = entry.substr(5);
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                bad(entry, "malformed seed");
            }
            char* end = nullptr;
            unsigned long s = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                bad(entry, "malformed seed");
            }
            plan.seed = static_cast<std::uint32_t>(s);
            continue;
        }

        const std::size_t colon = entry.find(':');
        const std::size_t at = entry.find('@');
        const std::size_t plus = entry.find('+', at == std::string::npos
                                                     ? 0
                                                     : at + 1);
        if (colon == std::string::npos || at == std::string::npos ||
            plus == std::string::npos || colon > at) {
            bad(entry, "expected <target>:<kind>@<start>+<duration>");
        }

        FaultWindow w;
        const std::string target_id = entry.substr(0, colon);
        const std::string kind_id = entry.substr(colon + 1, at - colon - 1);
        bool found = false;
        for (const TargetName& t : kTargets) {
            if (target_id == t.id) {
                w.target = t.target;
                found = true;
            }
        }
        if (!found) {
            bad(entry, "unknown target '" + target_id + "'");
        }
        found = false;
        for (const KindName& k : kKinds) {
            if (kind_id == k.id) {
                w.kind = k.kind;
                found = true;
            }
        }
        if (!found) {
            bad(entry, "unknown kind '" + kind_id + "'");
        }
        if (kindClass(w.kind) != targetClass(w.target)) {
            bad(entry, "kind '" + kind_id + "' does not apply to target '" +
                           target_id + "'");
        }

        std::string times = entry.substr(at + 1);
        const std::size_t p = times.find('+');
        std::string dur = times.substr(p + 1);
        const std::size_t star = dur.find('*');
        if (star != std::string::npos) {
            w.magnitude =
                parseNumber(entry, dur.substr(star + 1), "magnitude");
            if (w.magnitude <= 0.0) {
                bad(entry, "magnitude must be positive");
            }
            dur = dur.substr(0, star);
        }
        w.start = parseNumber(entry, times.substr(0, p), "start");
        w.duration = parseNumber(entry, dur, "duration");
        if (w.start < 0.0) {
            bad(entry, "start must be >= 0");
        }
        if (w.duration <= 0.0) {
            bad(entry, "duration must be > 0");
        }
        if (w.kind == FaultKind::kActPartial && w.magnitude > 1.0) {
            bad(entry, "partial magnitude must be in (0, 1]");
        }
        plan.windows.push_back(w);
    }
    return plan;
}

}  // namespace yukta::fault
