#include "fault/plan.h"

#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace yukta::fault {

namespace {

/** Fault classes; a kind is only valid on targets of its class. */
enum class Class
{
    kSensor,
    kActuator,
    kTiming,
    kMachine,
};

Class
targetClass(FaultTarget t)
{
    switch (t) {
      case FaultTarget::kActuator:
        return Class::kActuator;
      case FaultTarget::kTiming:
        return Class::kTiming;
      case FaultTarget::kBoard:
        return Class::kMachine;
      default:
        return Class::kSensor;
    }
}

Class
kindClass(FaultKind k)
{
    switch (k) {
      case FaultKind::kActIgnore:
      case FaultKind::kActPartial:
      case FaultKind::kActQuantStuck:
        return Class::kActuator;
      case FaultKind::kTickMiss:
      case FaultKind::kTickDouble:
        return Class::kTiming;
      case FaultKind::kBoardCrash:
      case FaultKind::kBoardDegrade:
      case FaultKind::kShardHang:
      case FaultKind::kBoardDrift:
        return Class::kMachine;
      default:
        return Class::kSensor;
    }
}

struct TargetName
{
    const char* id;
    FaultTarget target;
};

struct KindName
{
    const char* id;
    FaultKind kind;
};

constexpr TargetName kTargets[] = {
    {"p_big", FaultTarget::kPowerBig},
    {"p_little", FaultTarget::kPowerLittle},
    {"temp", FaultTarget::kTemp},
    {"perf_big", FaultTarget::kPerfBig},
    {"perf_little", FaultTarget::kPerfLittle},
    {"all", FaultTarget::kAll},
    {"act", FaultTarget::kActuator},
    {"tick", FaultTarget::kTiming},
};

constexpr KindName kKinds[] = {
    {"nan", FaultKind::kNan},
    {"inf", FaultKind::kInf},
    {"stuck", FaultKind::kStuck},
    {"freeze", FaultKind::kFreeze},
    {"spike", FaultKind::kSpike},
    {"drop", FaultKind::kDrop},
    {"ignore", FaultKind::kActIgnore},
    {"partial", FaultKind::kActPartial},
    {"quantstuck", FaultKind::kActQuantStuck},
    {"miss", FaultKind::kTickMiss},
    {"double", FaultKind::kTickDouble},
    {"crash", FaultKind::kBoardCrash},
    {"degrade", FaultKind::kBoardDegrade},
    {"hang", FaultKind::kShardHang},
    {"drift", FaultKind::kBoardDrift},
};

[[noreturn]] void
bad(const std::string& entry, std::size_t offset, const std::string& why)
{
    throw std::invalid_argument("FaultPlan::parse: at byte " +
                                std::to_string(offset) + ": clause '" +
                                entry + "': " + why);
}

double
parseNumber(const std::string& entry, std::size_t offset,
            const std::string& text, const std::string& what)
{
    // strtod alone is too permissive for a schedule grammar: it
    // accepts "nan", "inf"/"infinity", hex floats ("0x10"), and
    // leading whitespace. Restrict to plain decimal notation and
    // require a finite value.
    if (text.empty()) {
        bad(entry, offset, "missing " + what);
    }
    for (char c : text) {
        const bool ok = (c >= '0' && c <= '9') || c == '.' || c == 'e' ||
                        c == 'E' || c == '+' || c == '-';
        if (!ok) {
            bad(entry, offset, "malformed " + what + " '" + text + "'");
        }
    }
    char* end = nullptr;
    const double v = std::strtod(text.c_str(), &end);
    if (end == text.c_str() || *end != '\0' || !std::isfinite(v)) {
        bad(entry, offset, "malformed " + what + " '" + text + "'");
    }
    return v;
}

std::string
formatNumber(double v)
{
    std::ostringstream os;
    os << std::setprecision(12) << v;
    return os.str();
}

}  // namespace

std::string
faultTargetId(FaultTarget target)
{
    if (target == FaultTarget::kBoard) {
        return "board";  // Namespace prefix; canonical() appends the index.
    }
    for (const TargetName& t : kTargets) {
        if (t.target == target) {
            return t.id;
        }
    }
    return "unknown";
}

std::string
faultKindId(FaultKind kind)
{
    for (const KindName& k : kKinds) {
        if (k.kind == kind) {
            return k.id;
        }
    }
    return "unknown";
}

std::string
FaultPlan::canonical() const
{
    std::ostringstream os;
    os << "seed=" << seed;
    for (const FaultWindow& w : windows) {
        os << ";" << faultTargetId(w.target);
        if (w.target == FaultTarget::kBoard) {
            os << w.board;
        }
        os << ":" << faultKindId(w.kind) << "@" << formatNumber(w.start)
           << "+" << formatNumber(w.duration);
        if (w.magnitude > 0.0) {
            os << "*" << formatNumber(w.magnitude);
        }
    }
    return os.str();
}

FaultPlan
FaultPlan::parse(const std::string& spec)
{
    FaultPlan plan;
    // Split on ';' by hand (instead of getline) so every clause knows
    // its byte offset in the spec — parse errors report exactly where
    // the offending clause starts.
    std::size_t pos = 0;
    while (pos <= spec.size()) {
        if (pos == spec.size()) {
            break;  // Trailing content fully consumed, no stray ';'.
        }
        std::size_t semi = spec.find(';', pos);
        if (semi == std::string::npos) {
            semi = spec.size();
        }
        const std::string entry = spec.substr(pos, semi - pos);
        const std::size_t offset = pos;
        pos = semi + 1;
        if (entry.empty()) {
            bad(entry, offset, "empty clause (stray ';')");
        }
        if (entry.rfind("seed=", 0) == 0) {
            // Plain decimal digits only; strtoul would also accept
            // whitespace and a sign.
            const std::string v = entry.substr(5);
            if (v.empty() ||
                v.find_first_not_of("0123456789") != std::string::npos) {
                bad(entry, offset, "malformed seed");
            }
            char* end = nullptr;
            unsigned long s = std::strtoul(v.c_str(), &end, 10);
            if (end == v.c_str() || *end != '\0') {
                bad(entry, offset, "malformed seed");
            }
            plan.seed = static_cast<std::uint32_t>(s);
            continue;
        }

        const std::size_t colon = entry.find(':');
        const std::size_t at = entry.find('@');
        const std::size_t plus = entry.find('+', at == std::string::npos
                                                     ? 0
                                                     : at + 1);
        if (colon == std::string::npos || at == std::string::npos ||
            plus == std::string::npos || colon > at) {
            bad(entry, offset,
                "expected <target>:<kind>@<start>+<duration>");
        }

        FaultWindow w;
        const std::string target_id = entry.substr(0, colon);
        const std::string kind_id = entry.substr(colon + 1, at - colon - 1);
        bool found = false;
        for (const TargetName& t : kTargets) {
            if (target_id == t.id) {
                w.target = t.target;
                found = true;
            }
        }
        if (!found && target_id.rfind("board", 0) == 0) {
            // The board<i> machine namespace: "board" followed by a
            // plain decimal index ("board0", "board12"). A bare
            // "board" or a malformed index is rejected here rather
            // than falling through to "unknown target".
            const std::string idx = target_id.substr(5);
            if (idx.empty()) {
                bad(entry, offset,
                    "board target needs an index (e.g. board0)");
            }
            if (idx.find_first_not_of("0123456789") != std::string::npos) {
                bad(entry, offset,
                    "malformed board index '" + idx + "'");
            }
            if (idx.size() > 6) {
                bad(entry, offset,
                    "board index '" + idx + "' out of range");
            }
            w.target = FaultTarget::kBoard;
            w.board = static_cast<int>(std::strtoul(idx.c_str(),
                                                    nullptr, 10));
            found = true;
        }
        if (!found) {
            bad(entry, offset, "unknown target '" + target_id + "'");
        }
        found = false;
        for (const KindName& k : kKinds) {
            if (kind_id == k.id) {
                w.kind = k.kind;
                found = true;
            }
        }
        if (!found) {
            bad(entry, offset, "unknown kind '" + kind_id + "'");
        }
        if (kindClass(w.kind) != targetClass(w.target)) {
            bad(entry, offset,
                "kind '" + kind_id + "' does not apply to target '" +
                    target_id + "'");
        }

        std::string times = entry.substr(at + 1);
        const std::size_t p = times.find('+');
        std::string dur = times.substr(p + 1);
        const std::size_t star = dur.find('*');
        if (star != std::string::npos) {
            w.magnitude = parseNumber(entry, offset, dur.substr(star + 1),
                                      "magnitude");
            if (w.magnitude <= 0.0) {
                bad(entry, offset, "magnitude must be positive");
            }
            dur = dur.substr(0, star);
        }
        w.start = parseNumber(entry, offset, times.substr(0, p), "start");
        w.duration = parseNumber(entry, offset, dur, "duration");
        if (w.start < 0.0) {
            bad(entry, offset, "start must be >= 0");
        }
        if (w.duration <= 0.0) {
            bad(entry, offset, "duration must be > 0");
        }
        if (w.kind == FaultKind::kActPartial && w.magnitude > 1.0) {
            bad(entry, offset, "partial magnitude must be in (0, 1]");
        }
        if (w.kind == FaultKind::kBoardDegrade && w.magnitude > 1.0) {
            bad(entry, offset,
                "degrade magnitude is the remaining capacity fraction "
                "and must be in (0, 1]");
        }
        plan.windows.push_back(w);
    }
    return plan;
}

}  // namespace yukta::fault
