#ifndef YUKTA_FAULT_INJECTOR_H_
#define YUKTA_FAULT_INJECTOR_H_

/**
 * @file
 * Deterministic runtime fault injection at the platform boundary.
 * The injector sits between the board and the controller stack
 * (controllers/multilayer.h): each control tick it may corrupt the
 * sensor snapshot on the way up, corrupt or discard actuation
 * commands on the way down, and drop whole ticks — exactly as its
 * FaultPlan schedules, and bit-reproducibly for a given plan (the
 * only randomness, spike jitter, comes from the plan's seed).
 */

#include <cstddef>
#include <random>
#include <vector>

#include "fault/plan.h"
#include "obs/stateio.h"
#include "platform/board.h"
#include "platform/scheduler.h"
#include "platform/sensors.h"

namespace yukta::obs {
class TraceSink;
}  // namespace yukta::obs

namespace yukta::fault {

/** Tally of what the injector actually did during a run. */
struct FaultStats
{
    std::size_t corrupted_ticks = 0;   ///< Ticks with >= 1 bad field.
    std::size_t corrupted_fields = 0;  ///< Sensor fields corrupted.
    std::size_t actuator_faults = 0;   ///< Commands altered/discarded.
    std::size_t dropped_ticks = 0;     ///< Control ticks skipped.
};

/** Executes one FaultPlan against one run's observation/actuation. */
class FaultInjector
{
  public:
    /** Binds the injector to @p plan; RNG is seeded from the plan. */
    explicit FaultInjector(FaultPlan plan);

    /** @return the schedule driving this injector. */
    const FaultPlan& plan() const { return plan_; }

    /**
     * @return true when the control tick at time @p t (the
     * @p period -th invocation) must be skipped per a timing fault.
     */
    bool dropTick(double t, int period);

    /** @return @p clean with all sensor faults active at @p t applied. */
    platform::SensorReadings
    corruptReadings(double t, const platform::SensorReadings& clean);

    /**
     * @return the hardware command that actually reaches the board at
     * @p t: @p cmd, possibly discarded (-> @p prev), blended, or with
     * DVFS writes latched, per active actuator faults.
     */
    platform::HardwareInputs
    corruptHardware(double t, const platform::HardwareInputs& prev,
                    const platform::HardwareInputs& cmd);

    /** Actuation-side counterpart for the placement policy. */
    platform::PlacementPolicy
    corruptPolicy(double t, const platform::PlacementPolicy& prev,
                  const platform::PlacementPolicy& cmd);

    /** @return what the injector has done so far. */
    const FaultStats& stats() const { return stats_; }

    /**
     * Emits "fault" events (sensor/actuator corruption, dropped
     * ticks) to @p sink; nullptr detaches.
     */
    void attachTrace(obs::TraceSink* sink) { trace_ = sink; }

    /** Appends RNG, latch, and tally state to @p w (not the plan). */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save (same plan required). */
    void load(obs::StateReader& r);

  private:
    obs::TraceSink* trace_ = nullptr;
    FaultPlan plan_;
    std::mt19937 rng_;
    std::uniform_real_distribution<double> jitter_{-1.0, 1.0};
    std::vector<char> latched_;  ///< Per-window: latch captured?
    std::vector<platform::SensorReadings> latch_;  ///< Entry snapshots.
    FaultStats stats_;

    bool corruptField(const FaultWindow& w, double& field,
                      double latched_value);
};

}  // namespace yukta::fault

#endif  // YUKTA_FAULT_INJECTOR_H_
