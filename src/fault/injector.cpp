#include "fault/injector.h"

#include <cmath>
#include <limits>
#include <utility>

#include "obs/trace.h"

namespace yukta::fault {

using platform::HardwareInputs;
using platform::PlacementPolicy;
using platform::SensorReadings;

namespace {

constexpr double kDefaultSpikeMagnitude = 8.0;
constexpr double kDefaultPartialFraction = 0.3;

/** Blends integer core counts for partial actuation. */
std::size_t
blendCores(std::size_t prev, std::size_t cmd, double frac)
{
    const double p = static_cast<double>(prev);
    const double c = static_cast<double>(cmd);
    return static_cast<std::size_t>(std::lround(p + frac * (c - p)));
}

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan)
    : plan_(std::move(plan)), rng_(plan_.seed),
      latched_(plan_.windows.size(), 0), latch_(plan_.windows.size())
{
}

bool
FaultInjector::corruptField(const FaultWindow& w, double& field,
                            double latched_value)
{
    const double before = field;
    switch (w.kind) {
      case FaultKind::kNan:
        field = std::numeric_limits<double>::quiet_NaN();
        break;
      case FaultKind::kInf:
        field = std::numeric_limits<double>::infinity();
        break;
      case FaultKind::kStuck:
      case FaultKind::kFreeze:
        field = latched_value;
        break;
      case FaultKind::kSpike: {
        const double mag =
            w.magnitude > 0.0 ? w.magnitude : kDefaultSpikeMagnitude;
        field = field * mag * (1.0 + 0.25 * jitter_(rng_));
        break;
      }
      case FaultKind::kDrop:
        field = 0.0;
        break;
      default:
        return false;  // Actuator/timing kinds never reach here.
    }
    // NaN != NaN, so count the NaN kind explicitly.
    return w.kind == FaultKind::kNan || field != before;
}

SensorReadings
FaultInjector::corruptReadings(double t, const SensorReadings& clean)
{
    SensorReadings out = clean;
    std::size_t fields_hit = 0;
    for (std::size_t i = 0; i < plan_.windows.size(); ++i) {
        const FaultWindow& w = plan_.windows[i];
        const bool sensor_target = w.target != FaultTarget::kActuator &&
                                   w.target != FaultTarget::kTiming &&
                                   w.target != FaultTarget::kBoard;
        if (!sensor_target) {
            continue;
        }
        if (!w.active(t)) {
            latched_[i] = 0;
            continue;
        }
        if (latched_[i] == 0) {
            // First tick inside the window: capture the latch value
            // (what stuck/freeze will keep reporting).
            latch_[i] = clean;
            latched_[i] = 1;
        }
        const SensorReadings& held = latch_[i];
        switch (w.target) {
          case FaultTarget::kPowerBig:
            fields_hit += corruptField(w, out.p_big, held.p_big) ? 1 : 0;
            break;
          case FaultTarget::kPowerLittle:
            fields_hit +=
                corruptField(w, out.p_little, held.p_little) ? 1 : 0;
            break;
          case FaultTarget::kTemp:
            fields_hit += corruptField(w, out.temp, held.temp) ? 1 : 0;
            break;
          case FaultTarget::kPerfBig:
            fields_hit +=
                corruptField(w, out.instr_big, held.instr_big) ? 1 : 0;
            break;
          case FaultTarget::kPerfLittle:
            fields_hit +=
                corruptField(w, out.instr_little, held.instr_little) ? 1
                                                                     : 0;
            break;
          case FaultTarget::kAll:
            fields_hit += corruptField(w, out.p_big, held.p_big) ? 1 : 0;
            fields_hit +=
                corruptField(w, out.p_little, held.p_little) ? 1 : 0;
            fields_hit += corruptField(w, out.temp, held.temp) ? 1 : 0;
            fields_hit +=
                corruptField(w, out.instr_big, held.instr_big) ? 1 : 0;
            fields_hit +=
                corruptField(w, out.instr_little, held.instr_little) ? 1
                                                                     : 0;
            break;
          default:
            break;
        }
    }
    if (fields_hit > 0) {
        ++stats_.corrupted_ticks;
        stats_.corrupted_fields += fields_hit;
        if (trace_ != nullptr) {
            obs::TraceEvent ev = trace_->makeEvent("fault", "sensor");
            ev.integer("fields_hit", static_cast<long long>(fields_hit))
                .num("p_big", out.p_big)
                .num("p_little", out.p_little)
                .num("temp", out.temp);
            trace_->record(std::move(ev));
        }
    }
    return out;
}

HardwareInputs
FaultInjector::corruptHardware(double t, const HardwareInputs& prev,
                               const HardwareInputs& cmd)
{
    HardwareInputs out = cmd;
    for (const FaultWindow& w : plan_.windows) {
        if (w.target != FaultTarget::kActuator || !w.active(t)) {
            continue;
        }
        switch (w.kind) {
          case FaultKind::kActIgnore:
            out = prev;
            break;
          case FaultKind::kActPartial: {
            const double frac = w.magnitude > 0.0
                                    ? w.magnitude
                                    : kDefaultPartialFraction;
            out.big_cores = blendCores(prev.big_cores, out.big_cores, frac);
            out.little_cores =
                blendCores(prev.little_cores, out.little_cores, frac);
            out.freq_big =
                prev.freq_big + frac * (out.freq_big - prev.freq_big);
            out.freq_little = prev.freq_little +
                              frac * (out.freq_little - prev.freq_little);
            break;
          }
          case FaultKind::kActQuantStuck:
            out.freq_big = prev.freq_big;
            out.freq_little = prev.freq_little;
            break;
          default:
            break;
        }
        ++stats_.actuator_faults;
        if (trace_ != nullptr) {
            obs::TraceEvent ev = trace_->makeEvent("fault", "actuator");
            ev.str("kind", faultKindId(w.kind))
                .num("freq_big", out.freq_big)
                .num("freq_little", out.freq_little)
                .integer("big_cores", static_cast<long long>(out.big_cores));
            trace_->record(std::move(ev));
        }
    }
    return out;
}

PlacementPolicy
FaultInjector::corruptPolicy(double t, const PlacementPolicy& prev,
                             const PlacementPolicy& cmd)
{
    PlacementPolicy out = cmd;
    for (const FaultWindow& w : plan_.windows) {
        if (w.target != FaultTarget::kActuator || !w.active(t)) {
            continue;
        }
        switch (w.kind) {
          case FaultKind::kActIgnore:
            out = prev;
            break;
          case FaultKind::kActPartial: {
            const double frac = w.magnitude > 0.0
                                    ? w.magnitude
                                    : kDefaultPartialFraction;
            out.threads_big =
                prev.threads_big + frac * (out.threads_big -
                                           prev.threads_big);
            out.tpc_big = prev.tpc_big + frac * (out.tpc_big - prev.tpc_big);
            out.tpc_little =
                prev.tpc_little + frac * (out.tpc_little - prev.tpc_little);
            break;
          }
          case FaultKind::kActQuantStuck:
            // Quantization faults live on the DVFS path; placement
            // still applies.
            break;
          default:
            break;
        }
    }
    return out;
}

bool
FaultInjector::dropTick(double t, int period)
{
    for (const FaultWindow& w : plan_.windows) {
        if (w.target != FaultTarget::kTiming || !w.active(t)) {
            continue;
        }
        if (w.kind == FaultKind::kTickMiss ||
            (w.kind == FaultKind::kTickDouble && period % 2 == 1)) {
            ++stats_.dropped_ticks;
            if (trace_ != nullptr) {
                obs::TraceEvent ev = trace_->makeEvent("fault", "drop");
                ev.str("kind", faultKindId(w.kind))
                    .integer("period", period);
                trace_->record(std::move(ev));
            }
            return true;
        }
    }
    return false;
}

void
FaultInjector::save(obs::StateWriter& w) const
{
    w.rng("inj.rng", rng_);
    w.rng("inj.jitter", jitter_);
    std::vector<std::uint64_t> latched(latched_.begin(), latched_.end());
    w.u64vec("inj.latched", latched);
    w.u64("inj.latch.n", latch_.size());
    for (std::size_t i = 0; i < latch_.size(); ++i) {
        const std::string p = "inj.latch." + std::to_string(i);
        w.f64(p + ".p_big", latch_[i].p_big);
        w.f64(p + ".p_little", latch_[i].p_little);
        w.f64(p + ".temp", latch_[i].temp);
        w.f64(p + ".instr_big", latch_[i].instr_big);
        w.f64(p + ".instr_little", latch_[i].instr_little);
    }
    w.u64("inj.corrupted_ticks", stats_.corrupted_ticks);
    w.u64("inj.corrupted_fields", stats_.corrupted_fields);
    w.u64("inj.actuator_faults", stats_.actuator_faults);
    w.u64("inj.dropped_ticks", stats_.dropped_ticks);
}

void
FaultInjector::load(obs::StateReader& r)
{
    r.rng("inj.rng", rng_);
    r.rng("inj.jitter", jitter_);
    const auto latched = r.u64vec("inj.latched");
    latched_.assign(latched.begin(), latched.end());
    latch_.resize(r.u64("inj.latch.n"));
    for (std::size_t i = 0; i < latch_.size(); ++i) {
        const std::string p = "inj.latch." + std::to_string(i);
        latch_[i].p_big = r.f64(p + ".p_big");
        latch_[i].p_little = r.f64(p + ".p_little");
        latch_[i].temp = r.f64(p + ".temp");
        latch_[i].instr_big = r.f64(p + ".instr_big");
        latch_[i].instr_little = r.f64(p + ".instr_little");
    }
    stats_.corrupted_ticks = r.u64("inj.corrupted_ticks");
    stats_.corrupted_fields = r.u64("inj.corrupted_fields");
    stats_.actuator_faults = r.u64("inj.actuator_faults");
    stats_.dropped_ticks = r.u64("inj.dropped_ticks");
}

}  // namespace yukta::fault
