#ifndef YUKTA_CONTROL_LQG_H_
#define YUKTA_CONTROL_LQG_H_

/**
 * @file
 * Discrete LQR, steady-state Kalman filtering, and LQG controller
 * assembly. This implements the MIMO LQG baseline of Pothukuchi et
 * al. (ISCA 2016) that the paper compares Yukta against (Sec. VI-B).
 */

#include <optional>

#include "control/state_space.h"
#include "linalg/matrix.h"

namespace yukta::control {

/**
 * Discrete LQR gain: minimizes sum x'Qx + u'Ru for x(T+1)=Ax+Bu.
 *
 * @return K such that u = -K x, or std::nullopt when the Riccati
 *   solve fails (non-stabilizable pair).
 */
std::optional<linalg::Matrix> dlqr(const linalg::Matrix& a,
                                   const linalg::Matrix& b,
                                   const linalg::Matrix& q,
                                   const linalg::Matrix& r);

/** Steady-state Kalman gains for x(T+1)=Ax+Bu+w, y=Cx+Du+v. */
struct KalmanGains
{
    linalg::Matrix l_pred;  ///< Predictor gain: xhat+ includes L(y - yhat).
    linalg::Matrix p;       ///< Steady-state error covariance.
};

/**
 * Steady-state Kalman predictor for process noise covariance @p qn
 * (n x n) and measurement noise covariance @p rn (p x p).
 *
 * @return std::nullopt when the dual Riccati solve fails.
 */
std::optional<KalmanGains> kalman(const linalg::Matrix& a,
                                  const linalg::Matrix& c,
                                  const linalg::Matrix& qn,
                                  const linalg::Matrix& rn);

/** Weights for an LQG design on a given plant. */
struct LqgWeights
{
    linalg::Matrix q;   ///< State cost (defaults to C'C when empty).
    linalg::Matrix r;   ///< Input cost.
    linalg::Matrix qn;  ///< Process noise covariance (default I).
    linalg::Matrix rn;  ///< Measurement noise covariance (default I).
};

/**
 * Synthesizes a discrete LQG output-feedback controller (predictor
 * form). The returned controller maps plant outputs y to plant
 * inputs u:
 *
 *   xhat(T+1) = (A - B K - L C + L D K) xhat + L y
 *   u(T)      = -K xhat
 *
 * @param plant discrete plant.
 * @param weights design weights; empty members get defaults.
 * @return controller system, or std::nullopt on Riccati failure.
 */
std::optional<StateSpace> lqgSynthesize(const StateSpace& plant,
                                        const LqgWeights& weights);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_LQG_H_
