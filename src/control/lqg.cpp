#include "control/lqg.h"

#include <stdexcept>

#include "control/riccati.h"
#include "linalg/lu.h"

namespace yukta::control {

using linalg::Matrix;

std::optional<Matrix>
dlqr(const Matrix& a, const Matrix& b, const Matrix& q, const Matrix& r)
{
    auto res = dare(a, b, q, r);
    if (!res || !res->stabilizing) {
        return std::nullopt;
    }
    const Matrix& x = res->x;
    Matrix btxb = r + b.transpose() * x * b;
    try {
        return linalg::solve(btxb, b.transpose() * x * a);
    } catch (const std::runtime_error&) {
        return std::nullopt;
    }
}

std::optional<KalmanGains>
kalman(const Matrix& a, const Matrix& c, const Matrix& qn, const Matrix& rn)
{
    // Dual problem: dare on (A', C').
    auto res = dare(a.transpose(), c.transpose(), qn, rn);
    if (!res || !res->stabilizing) {
        return std::nullopt;
    }
    const Matrix& p = res->x;
    Matrix s = rn + c * p * c.transpose();
    KalmanGains out;
    try {
        // L = A P C' S^{-1}: solve S' X' = (A P C')'.
        Matrix apct = a * p * c.transpose();
        out.l_pred =
            linalg::solve(s.transpose(), apct.transpose()).transpose();
    } catch (const std::runtime_error&) {
        return std::nullopt;
    }
    out.p = p;
    return out;
}

std::optional<StateSpace>
lqgSynthesize(const StateSpace& plant, const LqgWeights& weights)
{
    if (!plant.isDiscrete()) {
        throw std::invalid_argument("lqgSynthesize: plant must be discrete");
    }
    std::size_t n = plant.numStates();
    std::size_t m = plant.numInputs();
    std::size_t p = plant.numOutputs();

    Matrix q = weights.q.empty() ? plant.c.transpose() * plant.c : weights.q;
    Matrix r = weights.r.empty() ? Matrix::identity(m) : weights.r;
    Matrix qn = weights.qn.empty() ? Matrix::identity(n) : weights.qn;
    Matrix rn = weights.rn.empty() ? Matrix::identity(p) : weights.rn;

    auto k = dlqr(plant.a, plant.b, q, r);
    if (!k) {
        return std::nullopt;
    }
    auto kal = kalman(plant.a, plant.c, qn, rn);
    if (!kal) {
        return std::nullopt;
    }
    const Matrix& kg = *k;
    const Matrix& l = kal->l_pred;

    Matrix ak = plant.a - plant.b * kg - l * plant.c + l * plant.d * kg;
    Matrix bk = l;
    Matrix ck = -1.0 * kg;
    Matrix dk(m, p);
    return StateSpace(ak, bk, ck, dk, plant.ts);
}

}  // namespace yukta::control
