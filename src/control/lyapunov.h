#ifndef YUKTA_CONTROL_LYAPUNOV_H_
#define YUKTA_CONTROL_LYAPUNOV_H_

/**
 * @file
 * Lyapunov equation solvers. The discrete solver (Smith doubling)
 * computes the gramians used by balanced truncation; the continuous
 * solver (Kronecker) backs validation and tests.
 */

#include "linalg/matrix.h"

namespace yukta::control {

/**
 * Solves the discrete Lyapunov equation A X A^T - X + Q = 0 by Smith
 * doubling iteration.
 *
 * @param a square matrix with spectral radius < 1.
 * @param q symmetric right-hand side.
 * @throws std::runtime_error when the iteration diverges (unstable A).
 */
linalg::Matrix dlyap(const linalg::Matrix& a, const linalg::Matrix& q);

/**
 * Solves the continuous Lyapunov equation A X + X A^T + Q = 0 via the
 * Kronecker-product linear system (suitable for the moderate orders
 * used in controller synthesis).
 *
 * @throws std::runtime_error when A and -A share an eigenvalue.
 */
linalg::Matrix clyap(const linalg::Matrix& a, const linalg::Matrix& q);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_LYAPUNOV_H_
