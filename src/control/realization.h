#ifndef YUKTA_CONTROL_REALIZATION_H_
#define YUKTA_CONTROL_REALIZATION_H_

/**
 * @file
 * Realization analysis: controllability / observability matrices and
 * rank tests, gramian-based degree estimates, and minimal realization
 * via balanced truncation of the numerically unreachable/unobservable
 * directions. The design flow uses these to sanity-check identified
 * models before synthesis.
 */

#include <cstddef>

#include "control/state_space.h"
#include "linalg/matrix.h"

namespace yukta::control {

/** @return the controllability matrix [B, AB, ..., A^{n-1}B]. */
linalg::Matrix controllabilityMatrix(const StateSpace& sys);

/** @return the observability matrix [C; CA; ...; CA^{n-1}]. */
linalg::Matrix observabilityMatrix(const StateSpace& sys);

/**
 * Numerical rank: number of singular values above
 * rtol * sigma_max.
 */
std::size_t numericalRank(const linalg::Matrix& m, double rtol = 1e-9);

/** @return true when (A, B) is controllable (full numerical rank). */
bool isControllable(const StateSpace& sys, double rtol = 1e-9);

/** @return true when (A, C) is observable. */
bool isObservable(const StateSpace& sys, double rtol = 1e-9);

/**
 * Minimal realization of a *stable discrete* system: balanced
 * truncation discarding Hankel directions below
 * @p rtol * hsv_max.
 *
 * @throws std::invalid_argument for continuous systems,
 *         std::runtime_error for unstable systems.
 */
StateSpace minimalRealization(const StateSpace& sys, double rtol = 1e-9);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_REALIZATION_H_
