#include "control/discretize.h"

#include <stdexcept>

#include "linalg/expm.h"
#include "linalg/lu.h"

namespace yukta::control {

using linalg::Matrix;

StateSpace
c2d(const StateSpace& sys, double ts)
{
    if (!sys.isContinuous()) {
        throw std::invalid_argument("c2d: system already discrete");
    }
    if (ts <= 0.0) {
        throw std::invalid_argument("c2d: sample time must be positive");
    }
    std::size_t n = sys.numStates();
    if (n == 0) {
        return StateSpace(sys.a, sys.b, sys.c, sys.d, ts);
    }
    double h = 0.5 * ts;

    Matrix ima = Matrix::identity(n) - h * sys.a;
    linalg::Lu lu(ima);
    if (!lu.invertible()) {
        throw std::runtime_error("c2d: (I - A Ts/2) singular");
    }
    Matrix e = lu.inverse();

    Matrix ad = e * (Matrix::identity(n) + h * sys.a);
    Matrix bd = e * sys.b * ts;
    Matrix cd = sys.c * e;
    Matrix dd = sys.d + 0.5 * (sys.c * bd);
    return StateSpace(ad, bd, cd, dd, ts);
}

StateSpace
d2c(const StateSpace& sys)
{
    if (!sys.isDiscrete()) {
        throw std::invalid_argument("d2c: system is not discrete");
    }
    std::size_t n = sys.numStates();
    if (n == 0) {
        return StateSpace(sys.a, sys.b, sys.c, sys.d, 0.0);
    }
    double ts = sys.ts;
    double h = 0.5 * ts;

    Matrix apl = sys.a + Matrix::identity(n);
    linalg::Lu lu(apl);
    if (!lu.invertible()) {
        throw std::runtime_error("d2c: pole at z = -1");
    }
    Matrix apl_inv = lu.inverse();

    Matrix a = (1.0 / h) * ((sys.a - Matrix::identity(n)) * apl_inv);
    Matrix b = (2.0 / ts) * (apl_inv * sys.b);
    Matrix c = 2.0 * (sys.c * apl_inv);
    Matrix d = sys.d - 0.5 * (c * sys.b);
    return StateSpace(a, b, c, d, 0.0);
}

StateSpace
c2dZoh(const StateSpace& sys, double ts)
{
    if (!sys.isContinuous()) {
        throw std::invalid_argument("c2dZoh: system already discrete");
    }
    if (ts <= 0.0) {
        throw std::invalid_argument("c2dZoh: sample time must be positive");
    }
    std::size_t n = sys.numStates();
    std::size_t m = sys.numInputs();
    if (n == 0) {
        return StateSpace(sys.a, sys.b, sys.c, sys.d, ts);
    }
    // exp([[A, B], [0, 0]] ts) = [[Ad, Bd], [0, I]].
    Matrix aug(n + m, n + m);
    aug.setBlock(0, 0, ts * sys.a);
    aug.setBlock(0, n, ts * sys.b);
    Matrix e = linalg::expm(aug);
    Matrix ad = e.block(0, 0, n, n);
    Matrix bd = e.block(0, n, n, m);
    return StateSpace(ad, bd, sys.c, sys.d, ts);
}

}  // namespace yukta::control
