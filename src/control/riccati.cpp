#include "control/riccati.h"

#include <cmath>
#include <stdexcept>

#include "linalg/eig.h"
#include "linalg/lu.h"
#include "linalg/qr.h"

namespace yukta::control {

using linalg::Matrix;

std::optional<RiccatiResult>
care(const Matrix& a, const Matrix& g, const Matrix& q)
{
    std::size_t n = a.rows();
    if (!a.isSquare() || g.rows() != n || g.cols() != n || q.rows() != n ||
        q.cols() != n) {
        throw std::invalid_argument("care: shape mismatch");
    }

    // Hamiltonian H = [A, -G; -Q, -A'].
    Matrix h(2 * n, 2 * n);
    h.setBlock(0, 0, a);
    h.setBlock(0, n, -g);
    h.setBlock(n, 0, -q);
    h.setBlock(n, n, -a.transpose());

    // Matrix sign iteration with determinant scaling.
    Matrix z = h;
    const int max_iter = 120;
    bool converged = false;
    for (int i = 0; i < max_iter; ++i) {
        linalg::Lu lu(z);
        if (!lu.invertible()) {
            return std::nullopt;  // eigenvalue at/near the imaginary axis
        }
        double det = std::abs(lu.determinant());
        double c = 1.0;
        if (det > 0.0 && std::isfinite(det)) {
            c = std::pow(det, -1.0 / static_cast<double>(2 * n));
            if (!std::isfinite(c) || c <= 0.0) {
                c = 1.0;
            }
        }
        Matrix zc = c * z;
        Matrix zc_inv = (1.0 / c) * lu.inverse();
        Matrix next = 0.5 * (zc + zc_inv);
        double delta = (next - z).maxAbs();
        z = next;
        if (delta <= 1e-12 * (1.0 + z.maxAbs())) {
            converged = true;
            break;
        }
    }
    if (!converged) {
        return std::nullopt;
    }

    // Stable subspace: (sign(H) + I) [I; X] = 0.
    Matrix s = z + Matrix::identity(2 * n);
    Matrix m12 = s.block(0, n, n, n);
    Matrix m22 = s.block(n, n, n, n);
    Matrix m11 = s.block(0, 0, n, n);
    Matrix m21 = s.block(n, 0, n, n);

    Matrix lhs = vstack(m12, m22);
    Matrix rhs = -vstack(m11, m21);
    Matrix x;
    try {
        x = linalg::lstsq(lhs, rhs);
    } catch (const std::runtime_error&) {
        return std::nullopt;
    }

    // The stabilizing solution is symmetric; large asymmetry signals a
    // failed extraction.
    double asym = (x - x.transpose()).maxAbs();
    if (asym > 1e-5 * (1.0 + x.maxAbs())) {
        return std::nullopt;
    }
    x = 0.5 * (x + x.transpose());

    RiccatiResult out;
    out.x = x;
    Matrix resid =
        a.transpose() * x + x * a - x * g * x + q;
    out.residual = resid.maxAbs();
    Matrix acl = a - g * x;
    out.stabilizing = linalg::spectralAbscissa(acl) < 1e-7;
    return out;
}

std::optional<RiccatiResult>
dare(const Matrix& a, const Matrix& b, const Matrix& q, const Matrix& r)
{
    std::size_t n = a.rows();
    std::size_t m = b.cols();
    if (!a.isSquare() || b.rows() != n || q.rows() != n || q.cols() != n ||
        r.rows() != m || r.cols() != m) {
        throw std::invalid_argument("dare: shape mismatch");
    }

    // Structure-preserving doubling (SDA).
    Matrix g0;
    try {
        g0 = b * linalg::inverse(r) * b.transpose();
    } catch (const std::runtime_error&) {
        return std::nullopt;
    }
    Matrix ak = a;
    Matrix gk = g0;
    Matrix hk = q;
    const int max_iter = 100;
    bool converged = false;
    for (int i = 0; i < max_iter; ++i) {
        Matrix w = Matrix::identity(n) + gk * hk;
        linalg::Lu lu(w);
        if (!lu.invertible()) {
            return std::nullopt;
        }
        Matrix winv_a = lu.solve(ak);
        Matrix winv_g = lu.solve(gk);

        Matrix a_next = ak * winv_a;
        Matrix g_next = gk + ak * winv_g * ak.transpose();
        Matrix h_next =
            hk + ak.transpose() * hk * winv_a;
        double delta = (h_next - hk).maxAbs();
        ak = a_next;
        gk = 0.5 * (g_next + g_next.transpose());
        hk = 0.5 * (h_next + h_next.transpose());
        if (delta <= 1e-13 * (1.0 + hk.maxAbs())) {
            converged = true;
            break;
        }
        if (hk.maxAbs() > 1e100) {
            break;
        }
    }
    if (!converged) {
        return std::nullopt;
    }

    RiccatiResult out;
    out.x = hk;
    // Residual of the standard DARE.
    Matrix btxb = r + b.transpose() * hk * b;
    Matrix gain;
    try {
        gain = linalg::solve(btxb, b.transpose() * hk * a);
    } catch (const std::runtime_error&) {
        return std::nullopt;
    }
    Matrix resid = a.transpose() * hk * a - hk -
                   a.transpose() * hk * b * gain + q;
    out.residual = resid.maxAbs();
    Matrix acl = a - b * gain;
    out.stabilizing = linalg::spectralRadius(acl) < 1.0 + 1e-7;
    return out;
}

}  // namespace yukta::control
