#include "control/lyapunov.h"

#include <stdexcept>

#include "linalg/lu.h"

namespace yukta::control {

using linalg::Matrix;

Matrix
dlyap(const Matrix& a, const Matrix& q)
{
    if (!a.isSquare() || !q.isSquare() || a.rows() != q.rows()) {
        throw std::invalid_argument("dlyap: shape mismatch");
    }
    // Smith doubling: X = sum_k A^k Q (A^T)^k.
    Matrix x = q;
    Matrix ak = a;
    const int max_iter = 200;
    for (int i = 0; i < max_iter; ++i) {
        Matrix incr = ak * x * ak.transpose();
        double delta = incr.maxAbs();
        x += incr;
        ak = ak * ak;
        if (delta <= 1e-14 * (1.0 + x.maxAbs())) {
            // Symmetrize against accumulation error.
            return 0.5 * (x + x.transpose());
        }
        if (x.maxAbs() > 1e100) {
            break;
        }
    }
    throw std::runtime_error("dlyap: iteration diverged (A unstable?)");
}

Matrix
clyap(const Matrix& a, const Matrix& q)
{
    if (!a.isSquare() || !q.isSquare() || a.rows() != q.rows()) {
        throw std::invalid_argument("clyap: shape mismatch");
    }
    std::size_t n = a.rows();
    // vec(A X + X A^T) = (I (x) A + A (x) I) vec(X) = -vec(Q).
    Matrix eye = Matrix::identity(n);
    Matrix lhs = kron(eye, a) + kron(a, eye);
    linalg::Lu lu(lhs);
    if (!lu.invertible()) {
        throw std::runtime_error("clyap: A and -A share an eigenvalue");
    }
    Matrix x = unvec(lu.solve(-vec(q)), n, n);
    return 0.5 * (x + x.transpose());
}

}  // namespace yukta::control
