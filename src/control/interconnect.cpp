#include "control/interconnect.h"

#include <stdexcept>

#include "linalg/lu.h"

namespace yukta::control {

using linalg::Matrix;

namespace {

void
checkSameTimebase(const StateSpace& g1, const StateSpace& g2,
                  const char* what)
{
    if (g1.ts != g2.ts) {
        throw std::invalid_argument(std::string(what) +
                                    ": sample time mismatch");
    }
}

}  // namespace

StateSpace
series(const StateSpace& g1, const StateSpace& g2)
{
    checkSameTimebase(g1, g2, "series");
    if (g2.numInputs() != g1.numOutputs()) {
        throw std::invalid_argument("series: port mismatch");
    }
    std::size_t n1 = g1.numStates();
    std::size_t n2 = g2.numStates();

    Matrix a(n1 + n2, n1 + n2);
    a.setBlock(0, 0, g1.a);
    a.setBlock(n1, 0, g2.b * g1.c);
    a.setBlock(n1, n1, g2.a);

    Matrix b = vstack(g1.b, g2.b * g1.d);
    Matrix c = hstack(g2.d * g1.c, g2.c);
    Matrix d = g2.d * g1.d;
    return StateSpace(a, b, c, d, g1.ts);
}

StateSpace
parallel(const StateSpace& g1, const StateSpace& g2)
{
    checkSameTimebase(g1, g2, "parallel");
    if (g1.numInputs() != g2.numInputs() ||
        g1.numOutputs() != g2.numOutputs()) {
        throw std::invalid_argument("parallel: port mismatch");
    }
    Matrix a = blkdiag(g1.a, g2.a);
    Matrix b = vstack(g1.b, g2.b);
    Matrix c = hstack(g1.c, g2.c);
    Matrix d = g1.d + g2.d;
    return StateSpace(a, b, c, d, g1.ts);
}

StateSpace
append(const StateSpace& g1, const StateSpace& g2)
{
    checkSameTimebase(g1, g2, "append");
    Matrix a = blkdiag(g1.a, g2.a);
    Matrix b = blkdiag(g1.b, g2.b);
    Matrix c = blkdiag(g1.c, g2.c);
    Matrix d = blkdiag(g1.d, g2.d);
    return StateSpace(a, b, c, d, g1.ts);
}

StateSpace
feedback(const StateSpace& g, const StateSpace& k)
{
    // Loop transfer L = G K; closed loop y = (I + L)^{-1} L r.
    StateSpace l = series(k, g);
    std::size_t p = l.numOutputs();

    Matrix i_dl = Matrix::identity(p) + l.d;
    linalg::Lu lu(i_dl);
    if (!lu.invertible()) {
        throw std::runtime_error("feedback: ill-posed loop (I + D)");
    }
    Matrix m = lu.inverse();

    Matrix a = l.a - l.b * m * l.c;
    Matrix b = l.b * (Matrix::identity(p) - m * l.d);
    Matrix c = m * l.c;
    Matrix d = m * l.d;
    return StateSpace(a, b, c, d, g.ts);
}

StateSpace
lftLower(const StateSpace& p, const StateSpace& k, std::size_t nz,
         std::size_t nw)
{
    checkSameTimebase(p, k, "lftLower");
    if (nz > p.numOutputs() || nw > p.numInputs()) {
        throw std::invalid_argument("lftLower: bad partition");
    }
    std::size_t ny = p.numOutputs() - nz;
    std::size_t nu = p.numInputs() - nw;
    if (k.numInputs() != ny || k.numOutputs() != nu) {
        throw std::invalid_argument("lftLower: controller port mismatch");
    }
    std::size_t n = p.numStates();
    std::size_t nk = k.numStates();

    Matrix b1 = p.b.block(0, 0, n, nw);
    Matrix b2 = p.b.block(0, nw, n, nu);
    Matrix c1 = p.c.block(0, 0, nz, n);
    Matrix c2 = p.c.block(nz, 0, ny, n);
    Matrix d11 = p.d.block(0, 0, nz, nw);
    Matrix d12 = p.d.block(0, nw, nz, nu);
    Matrix d21 = p.d.block(nz, 0, ny, nw);
    Matrix d22 = p.d.block(nz, nw, ny, nu);

    // Well-posedness: y = C2 x + D21 w + D22 u, u = Ck xk + Dk y.
    Matrix i_d22dk = Matrix::identity(ny) - d22 * k.d;
    linalg::Lu lu(i_d22dk);
    if (!lu.invertible()) {
        throw std::runtime_error("lftLower: ill-posed interconnection");
    }
    Matrix r = lu.inverse();

    // y = r (C2 x + D22 Ck xk + D21 w)
    Matrix y_x = r * c2;
    Matrix y_xk = r * d22 * k.c;
    Matrix y_w = r * d21;

    // u = Dk y + Ck xk
    Matrix u_x = k.d * y_x;
    Matrix u_xk = k.d * y_xk + k.c;
    Matrix u_w = k.d * y_w;

    Matrix a(n + nk, n + nk);
    a.setBlock(0, 0, p.a + b2 * u_x);
    a.setBlock(0, n, b2 * u_xk);
    a.setBlock(n, 0, k.b * y_x);
    a.setBlock(n, n, k.a + k.b * y_xk);

    Matrix b = vstack(b1 + b2 * u_w, k.b * y_w);
    Matrix c = hstack(c1 + d12 * u_x, d12 * u_xk);
    Matrix d = d11 + d12 * u_w;
    return StateSpace(a, b, c, d, p.ts);
}

StateSpace
lftUpper(const StateSpace& p, const StateSpace& delta,
         std::size_t ndelta_out, std::size_t ndelta_in)
{
    // Reorder ports so the Delta channels become the *last* ports,
    // then reuse lftLower. Inputs [d; w] -> [w; d], outputs
    // [f; z] -> [z; f].
    std::size_t nin = p.numInputs();
    std::size_t nout = p.numOutputs();
    if (ndelta_in > nin || ndelta_out > nout) {
        throw std::invalid_argument("lftUpper: bad partition");
    }
    std::size_t nw = nin - ndelta_in;
    std::size_t nz = nout - ndelta_out;

    Matrix b = hstack(p.b.block(0, ndelta_in, p.numStates(), nw),
                      p.b.block(0, 0, p.numStates(), ndelta_in));
    Matrix c = vstack(p.c.block(ndelta_out, 0, nz, p.numStates()),
                      p.c.block(0, 0, ndelta_out, p.numStates()));
    // D reordered in both directions.
    Matrix d_wz = p.d.block(ndelta_out, ndelta_in, nz, nw);
    Matrix d_dz = p.d.block(ndelta_out, 0, nz, ndelta_in);
    Matrix d_wf = p.d.block(0, ndelta_in, ndelta_out, nw);
    Matrix d_df = p.d.block(0, 0, ndelta_out, ndelta_in);
    Matrix d = vstack(hstack(d_wz, d_dz), hstack(d_wf, d_df));

    StateSpace reordered(p.a, b, c, d, p.ts);
    return lftLower(reordered, delta, nz, nw);
}

}  // namespace yukta::control
