#include "control/balance.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "control/lyapunov.h"
#include "linalg/lu.h"
#include "linalg/svd.h"

namespace yukta::control {

using linalg::Matrix;

BalancedReduction
balancedTruncate(const StateSpace& sys, std::size_t max_order)
{
    if (!sys.isDiscrete()) {
        throw std::invalid_argument("balancedTruncate: discrete systems only");
    }
    std::size_t n = sys.numStates();
    if (n == 0) {
        return {sys, {}};
    }

    // Gramians: P (controllability), Q (observability).
    Matrix p = dlyap(sys.a, sys.b * sys.b.transpose());
    Matrix q = dlyap(sys.a.transpose(), sys.c.transpose() * sys.c);

    // Square roots (jittered Cholesky tolerates semidefiniteness).
    Matrix lp = linalg::cholesky(p, 1e-12);
    Matrix lq = linalg::cholesky(q, 1e-12);

    // Hankel SVD: Lq' Lp = U S V'.
    linalg::Svd d = linalg::svd(lq.transpose() * lp);

    std::size_t r = std::min(max_order, n);
    // Do not keep numerically-zero Hankel directions.
    double cutoff = 1e-12 * (d.s.empty() ? 0.0 : d.s.front());
    while (r > 1 && d.s[r - 1] <= cutoff) {
        --r;
    }

    // Balancing transforms restricted to the kept directions:
    // T = Lp V S^{-1/2}, Tinv = S^{-1/2} U' Lq'.
    Matrix v_r(n, r);
    Matrix u_r(n, r);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < r; ++j) {
            v_r(i, j) = d.v(i, j);
            u_r(i, j) = d.u(i, j);
        }
    }
    std::vector<double> s_isqrt(r);
    for (std::size_t j = 0; j < r; ++j) {
        s_isqrt[j] = 1.0 / std::sqrt(std::max(d.s[j], 1e-300));
    }
    Matrix t = lp * v_r * Matrix::diag(s_isqrt);
    Matrix tinv = Matrix::diag(s_isqrt) * u_r.transpose() * lq.transpose();

    BalancedReduction out;
    out.hsv = d.s;
    out.sys = StateSpace(tinv * sys.a * t, tinv * sys.b, sys.c * t, sys.d,
                         sys.ts);
    return out;
}

}  // namespace yukta::control
