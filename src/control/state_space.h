#ifndef YUKTA_CONTROL_STATE_SPACE_H_
#define YUKTA_CONTROL_STATE_SPACE_H_

/**
 * @file
 * Linear time-invariant state-space systems, continuous or discrete:
 *
 *   continuous:  dx/dt = A x + B u,   y = C x + D u
 *   discrete:    x(T+1) = A x(T) + B u(T),   y(T) = C x(T) + D u(T)
 *
 * This is the lingua franca between system identification, controller
 * synthesis, and the runtime controllers.
 */

#include <cstddef>
#include <vector>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace yukta::control {

/** LTI system in state-space form. */
struct StateSpace
{
    linalg::Matrix a;  ///< State evolution (n x n).
    linalg::Matrix b;  ///< Input map (n x m).
    linalg::Matrix c;  ///< Output map (p x n).
    linalg::Matrix d;  ///< Feed-through (p x m).

    /** Sample time in seconds; 0 means continuous time. */
    double ts = 0.0;

    StateSpace() = default;

    /**
     * Builds and validates a system.
     * @throws std::invalid_argument on inconsistent dimensions.
     */
    StateSpace(linalg::Matrix a_in, linalg::Matrix b_in,
               linalg::Matrix c_in, linalg::Matrix d_in, double ts_in = 0.0);

    /** @return a static-gain system y = G u (no states). */
    static StateSpace gain(const linalg::Matrix& g, double ts = 0.0);

    /** Shape accessors: state, input, and output dimensions. */
    std::size_t numStates() const { return a.rows(); }
    std::size_t numInputs() const { return b.cols(); }
    std::size_t numOutputs() const { return c.rows(); }

    /** Sampled-time (ts > 0) vs. continuous-time predicates. */
    bool isDiscrete() const { return ts > 0.0; }
    // yukta-lint: allow(float-eq) ts==0 is the continuous-time sentinel
    bool isContinuous() const { return ts == 0.0; }

    /** @return the poles (eigenvalues of A). */
    std::vector<linalg::Complex> poles() const;

    /**
     * @return true when the system is asymptotically stable: spectral
     * radius < 1 (discrete) or spectral abscissa < 0 (continuous),
     * with margin @p margin.
     */
    bool isStable(double margin = 1e-9) const;

    /**
     * Frequency response at complex frequency @p s:
     * G(s) = C (sI - A)^{-1} B + D. For discrete systems pass
     * s = e^{j w Ts}.
     */
    linalg::CMatrix evalAt(linalg::Complex s) const;

    /**
     * Frequency response at angular frequency @p w (rad/s); picks
     * s = jw or z = e^{j w Ts} automatically.
     */
    linalg::CMatrix freqResponse(double w) const;

    /**
     * Batched frequency response over a whole grid (Laub's method):
     * one O(n^3) orthogonal Hessenberg reduction of A, then an
     * O(n^2) shifted-Hessenberg solve per grid point with reused
     * workspaces. Agrees with pointwise freqResponse() to roundoff;
     * the pointwise path stays the oracle in tests.
     *
     * @param freqs angular frequencies (rad/s), any order.
     * @return G(jw) (or G(e^{j w Ts})) for each entry of @p freqs.
     */
    std::vector<linalg::CMatrix>
    freqResponseBatch(const std::vector<double>& freqs) const;

    /** @return steady-state gain G(0) (continuous) or G(1) (discrete). */
    linalg::Matrix dcGain() const;

    /** @return the transposed/dual system (A', C', B', D'). */
    StateSpace dual() const;

    /** @return the system with inputs/outputs scaled: Do * G * Di. */
    StateSpace scaled(const linalg::Matrix& out_scale,
                      const linalg::Matrix& in_scale) const;
};

/**
 * @return @p points log-spaced frequencies spanning [@p lo, @p hi],
 * with both endpoints pinned exactly (no log10/pow round-trip drift,
 * so discrete sweeps can land on the Nyquist frequency bit-exactly).
 * @throws std::invalid_argument unless 0 < lo <= hi and points >= 2
 *   (or points == 1 with lo == hi).
 */
std::vector<double> logSpacedFrequencies(double lo, double hi,
                                         std::size_t points);

/** One step of a discrete system: returns y and updates x in place. */
linalg::Vector stepOnce(const StateSpace& sys, linalg::Vector& x,
                        const linalg::Vector& u);

/**
 * Simulates a discrete system over an input sequence.
 *
 * @param sys discrete-time system.
 * @param inputs input vector per step.
 * @param x0 initial state (zero when empty).
 * @return output vector per step.
 */
std::vector<linalg::Vector> simulate(const StateSpace& sys,
                                     const std::vector<linalg::Vector>& inputs,
                                     linalg::Vector x0 = {});

/**
 * Discrete step response of duration @p steps for input channel
 * @p input_idx (unit step).
 */
std::vector<linalg::Vector> stepResponse(const StateSpace& sys,
                                         std::size_t input_idx,
                                         std::size_t steps);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_STATE_SPACE_H_
