#include "control/realization.h"

#include <stdexcept>

#include "control/balance.h"
#include "linalg/svd.h"

namespace yukta::control {

using linalg::Matrix;

Matrix
controllabilityMatrix(const StateSpace& sys)
{
    std::size_t n = sys.numStates();
    Matrix block = sys.b;
    Matrix ctrb = block;
    for (std::size_t k = 1; k < n; ++k) {
        block = sys.a * block;
        ctrb = hstack(ctrb, block);
    }
    return ctrb;
}

Matrix
observabilityMatrix(const StateSpace& sys)
{
    std::size_t n = sys.numStates();
    Matrix block = sys.c;
    Matrix obsv = block;
    for (std::size_t k = 1; k < n; ++k) {
        block = block * sys.a;
        obsv = vstack(obsv, block);
    }
    return obsv;
}

std::size_t
numericalRank(const Matrix& m, double rtol)
{
    if (m.empty()) {
        return 0;
    }
    linalg::Svd d = linalg::svd(m);
    if (d.s.empty() || d.s.front() <= 0.0) {
        return 0;
    }
    std::size_t rank = 0;
    for (double s : d.s) {
        if (s > rtol * d.s.front()) {
            ++rank;
        }
    }
    return rank;
}

bool
isControllable(const StateSpace& sys, double rtol)
{
    if (sys.numStates() == 0) {
        return true;
    }
    return numericalRank(controllabilityMatrix(sys), rtol) ==
           sys.numStates();
}

bool
isObservable(const StateSpace& sys, double rtol)
{
    if (sys.numStates() == 0) {
        return true;
    }
    return numericalRank(observabilityMatrix(sys), rtol) == sys.numStates();
}

StateSpace
minimalRealization(const StateSpace& sys, double rtol)
{
    if (!sys.isDiscrete()) {
        throw std::invalid_argument(
            "minimalRealization: discrete systems only");
    }
    if (!sys.isStable()) {
        throw std::runtime_error("minimalRealization: unstable system");
    }
    if (sys.numStates() == 0) {
        return sys;
    }
    // Balanced truncation keeping directions above the Hankel cutoff.
    BalancedReduction full = balancedTruncate(sys, sys.numStates());
    std::size_t keep = 0;
    double top = full.hsv.empty() ? 0.0 : full.hsv.front();
    for (double h : full.hsv) {
        if (h > rtol * top) {
            ++keep;
        }
    }
    keep = std::max<std::size_t>(keep, 1);
    return balancedTruncate(sys, keep).sys;
}

}  // namespace yukta::control
