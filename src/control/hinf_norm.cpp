#include "control/hinf_norm.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "control/discretize.h"
#include "linalg/eig.h"
#include "linalg/lu.h"
#include "linalg/svd.h"

namespace yukta::control {

using linalg::Matrix;

bool
gammaHamiltonianHasImaginaryEigenvalue(const StateSpace& sys, double gamma,
                                       double axis_tol)
{
    std::size_t n = sys.numStates();
    std::size_t m = sys.numInputs();
    if (n == 0) {
        return false;
    }
    // R = gamma^2 I - D'D must be positive definite for the test.
    Matrix r = gamma * gamma * Matrix::identity(m) -
               sys.d.transpose() * sys.d;
    linalg::Lu lu(r);
    if (!lu.invertible()) {
        return true;  // gamma == sigma_max(D): boundary case
    }
    Matrix rinv = lu.inverse();

    Matrix a_h = sys.a + sys.b * rinv * sys.d.transpose() * sys.c;
    Matrix g_h = sys.b * rinv * sys.b.transpose();
    Matrix q_h =
        sys.c.transpose() *
        (Matrix::identity(sys.numOutputs()) +
         sys.d * rinv * sys.d.transpose()) *
        sys.c;

    Matrix ham(2 * n, 2 * n);
    ham.setBlock(0, 0, a_h);
    ham.setBlock(0, n, g_h);
    ham.setBlock(n, 0, -1.0 * q_h);
    ham.setBlock(n, n, -1.0 * a_h.transpose());

    double scale = std::max(1.0, ham.normInf());
    for (const linalg::Complex& l : linalg::eigenvalues(ham)) {
        if (std::abs(l.real()) <= axis_tol * scale) {
            return true;
        }
    }
    return false;
}

double
hinfNormExact(const StateSpace& sys, double rtol)
{
    if (!sys.isStable(1e-12)) {
        throw std::invalid_argument("hinfNormExact: system must be stable");
    }
    StateSpace g = sys.isDiscrete() ? d2c(sys) : sys;

    // Lower bound: max of sigma_max at DC, at a mid frequency, and at
    // infinity (D); upper bound from a coarse growth search.
    double lo = linalg::sigmaMax(g.dcGain());
    lo = std::max(lo, linalg::sigmaMax(g.d));
    lo = std::max(lo, linalg::sigmaMax(g.freqResponse(1.0)));
    lo = std::max(lo, 1e-12);

    double hi = 2.0 * lo + 1e-9;
    int guard = 0;
    while (gammaHamiltonianHasImaginaryEigenvalue(g, hi) && guard++ < 60) {
        hi *= 2.0;
    }

    while (hi - lo > rtol * lo) {
        double mid = 0.5 * (lo + hi);
        if (gammaHamiltonianHasImaginaryEigenvalue(g, mid)) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    return 0.5 * (lo + hi);
}

}  // namespace yukta::control
