#ifndef YUKTA_CONTROL_BALANCE_H_
#define YUKTA_CONTROL_BALANCE_H_

/**
 * @file
 * Balanced realization and truncation of stable discrete systems.
 * Used to reduce synthesized SSV controllers to the paper's runtime
 * order (N = 20).
 */

#include <vector>

#include "control/state_space.h"

namespace yukta::control {

/** Balanced truncation outcome. */
struct BalancedReduction
{
    StateSpace sys;             ///< Reduced system.
    std::vector<double> hsv;    ///< All Hankel singular values, descending.
};

/**
 * Reduces a stable discrete system to at most @p max_order states by
 * balanced truncation (discarding states with the smallest Hankel
 * singular values).
 *
 * @param sys stable discrete system.
 * @param max_order target order; the result keeps
 *   min(max_order, numStates) states.
 * @throws std::invalid_argument for continuous systems.
 * @throws std::runtime_error when @p sys is unstable (gramians
 *   undefined).
 */
BalancedReduction balancedTruncate(const StateSpace& sys,
                                   std::size_t max_order);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_BALANCE_H_
