#ifndef YUKTA_CONTROL_RICCATI_H_
#define YUKTA_CONTROL_RICCATI_H_

/**
 * @file
 * Algebraic Riccati equation solvers:
 *
 *  - care(): continuous-time, A'X + XA - X G X + Q = 0, solved via the
 *    matrix-sign-function iteration on the Hamiltonian. G may be
 *    indefinite, which is what the H-infinity central controller
 *    needs (G = B2 B2' - gamma^-2 B1 B1').
 *  - dare(): discrete-time standard LQR Riccati, solved with the
 *    structure-preserving doubling algorithm (SDA).
 */

#include <optional>

#include "linalg/matrix.h"

namespace yukta::control {

/** Outcome of a Riccati solve. */
struct RiccatiResult
{
    linalg::Matrix x;       ///< Stabilizing solution (symmetric).
    double residual = 0.0;  ///< Max-abs residual of the equation.
    bool stabilizing = true;  ///< Closed-loop matrix is stable.
};

/**
 * Solves A'X + XA - X G X + Q = 0 for the stabilizing X.
 *
 * @param a n x n.
 * @param g n x n symmetric (possibly indefinite).
 * @param q n x n symmetric.
 * @return std::nullopt when the Hamiltonian has eigenvalues on the
 *   imaginary axis or the sign iteration fails (no stabilizing
 *   solution exists) or the extracted solution is not symmetric
 *   within tolerance.
 */
std::optional<RiccatiResult> care(const linalg::Matrix& a,
                                  const linalg::Matrix& g,
                                  const linalg::Matrix& q);

/**
 * Solves the discrete LQR Riccati equation
 * A'XA - X - A'XB (R + B'XB)^{-1} B'XA + Q = 0.
 *
 * @param a n x n, @p b n x m, @p q n x n PSD, @p r m x m PD.
 * @return std::nullopt when the doubling iteration fails to converge.
 */
std::optional<RiccatiResult> dare(const linalg::Matrix& a,
                                  const linalg::Matrix& b,
                                  const linalg::Matrix& q,
                                  const linalg::Matrix& r);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_RICCATI_H_
