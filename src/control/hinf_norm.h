#ifndef YUKTA_CONTROL_HINF_NORM_H_
#define YUKTA_CONTROL_HINF_NORM_H_

/**
 * @file
 * Exact H-infinity norm computation via the Hamiltonian bisection of
 * Boyd-Balakrishnan-Kabamba: gamma exceeds the norm iff the
 * gamma-Hamiltonian has no eigenvalues on the imaginary axis. The
 * frequency-sweep estimate in robust/hinf.h can miss a narrow peak;
 * this test cannot.
 */

#include "control/state_space.h"

namespace yukta::control {

/**
 * Computes ||G||_inf for a *stable* system to relative tolerance
 * @p rtol. Discrete systems are mapped through the norm-preserving
 * bilinear transform.
 *
 * @throws std::invalid_argument when @p sys is unstable.
 */
double hinfNormExact(const StateSpace& sys, double rtol = 1e-6);

/**
 * @return true when the gamma-Hamiltonian of the (continuous, stable)
 * system has an eigenvalue within @p axis_tol of the imaginary axis,
 * i.e. sigma_max(G(jw)) crosses gamma at some frequency.
 */
bool gammaHamiltonianHasImaginaryEigenvalue(const StateSpace& sys,
                                            double gamma,
                                            double axis_tol = 1e-7);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_HINF_NORM_H_
