#include "control/state_space.h"

#include <cmath>
#include <stdexcept>

#include "linalg/cmatrix.h"
#include "linalg/eig.h"
#include "linalg/hessenberg.h"
#include "linalg/lu.h"

namespace yukta::control {

using linalg::CMatrix;
using linalg::Complex;
using linalg::Matrix;
using linalg::Vector;

StateSpace::StateSpace(Matrix a_in, Matrix b_in, Matrix c_in, Matrix d_in,
                       double ts_in)
    : a(std::move(a_in)), b(std::move(b_in)), c(std::move(c_in)),
      d(std::move(d_in)), ts(ts_in)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("StateSpace: A must be square");
    }
    if (b.rows() != a.rows()) {
        throw std::invalid_argument("StateSpace: B row count != states");
    }
    if (c.cols() != a.rows()) {
        throw std::invalid_argument("StateSpace: C col count != states");
    }
    if (d.rows() != c.rows() || d.cols() != b.cols()) {
        throw std::invalid_argument("StateSpace: D shape mismatch");
    }
    if (ts < 0.0) {
        throw std::invalid_argument("StateSpace: negative sample time");
    }
}

StateSpace
StateSpace::gain(const Matrix& g, double ts)
{
    return StateSpace(Matrix(0, 0), Matrix(0, g.cols()),
                      Matrix(g.rows(), 0), g, ts);
}

std::vector<Complex>
StateSpace::poles() const
{
    return linalg::eigenvalues(a);
}

bool
StateSpace::isStable(double margin) const
{
    if (numStates() == 0) {
        return true;
    }
    if (isDiscrete()) {
        return linalg::spectralRadius(a) < 1.0 - margin;
    }
    return linalg::spectralAbscissa(a) < -margin;
}

CMatrix
StateSpace::evalAt(Complex s) const
{
    std::size_t n = numStates();
    if (n == 0) {
        return CMatrix(d);
    }
    // (sI - A)
    CMatrix si_a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            si_a(i, j) = Complex(-a(i, j), 0.0);
        }
        si_a(i, i) += s;
    }
    CMatrix x = csolve(si_a, CMatrix(b));
    return CMatrix(c) * x + CMatrix(d);
}

CMatrix
StateSpace::freqResponse(double w) const
{
    if (isDiscrete()) {
        return evalAt(std::exp(Complex(0.0, w * ts)));
    }
    return evalAt(Complex(0.0, w));
}

std::vector<CMatrix>
StateSpace::freqResponseBatch(const std::vector<double>& freqs) const
{
    std::vector<CMatrix> out;
    out.reserve(freqs.size());
    const std::size_t n = numStates();
    if (n == 0) {
        out.assign(freqs.size(), CMatrix(d));
        return out;
    }

    // One-time O(n^3): A = Q H Q^T, then fold Q into the input and
    // output maps so every grid point only touches H.
    const linalg::HessenbergForm hess = linalg::hessenbergReduce(a);
    const CMatrix bt(hess.q.transpose() * b);
    const CMatrix ct(c * hess.q);
    const CMatrix dc(d);
    linalg::HessenbergSolver solver(hess.h, numInputs());

    const std::size_t p = numOutputs();
    const std::size_t m = numInputs();
    const Complex* cp = ct.data();
    const Complex* dp = dc.data();
    for (double w : freqs) {
        const Complex z = isDiscrete() ? std::exp(Complex(0.0, w * ts))
                                       : Complex(0.0, w);
        const CMatrix& x = solver.solve(z, bt);
        // G = ct x + dc, filled in place: a per-point operator* would
        // allocate two temporaries and rescan x for finiteness, which
        // costs more than the O(n^2) solve at small orders.
        const Complex* xp = x.data();
        CMatrix& g = out.emplace_back(p, m);
        Complex* gp = g.data();
        for (std::size_t i = 0; i < p; ++i) {
            for (std::size_t j = 0; j < m; ++j) {
                Complex s = dp[i * m + j];
                for (std::size_t k = 0; k < n; ++k) {
                    s += cp[i * n + k] * xp[k * m + j];
                }
                gp[i * m + j] = s;
            }
        }
    }
    return out;
}

std::vector<double>
logSpacedFrequencies(double lo, double hi, std::size_t points)
{
    if (!(lo > 0.0) || !(hi >= lo)) {
        throw std::invalid_argument(
            "logSpacedFrequencies: need 0 < lo <= hi");
    }
    if (points == 0 || (points == 1 && hi > lo)) {
        throw std::invalid_argument(
            "logSpacedFrequencies: need >= 2 points to span lo < hi");
    }
    if (points == 1) {
        return {lo};
    }
    std::vector<double> w(points);
    const double llo = std::log10(lo);
    const double lhi = std::log10(hi);
    for (std::size_t i = 0; i < points; ++i) {
        const double t =
            static_cast<double>(i) / static_cast<double>(points - 1);
        w[i] = std::pow(10.0, llo + (lhi - llo) * t);
    }
    // Pin both ends: pow(10, log10(x)) need not round-trip to x, and
    // discrete sweeps must hit the Nyquist frequency exactly.
    w.front() = lo;
    w.back() = hi;
    return w;
}

Matrix
StateSpace::dcGain() const
{
    Complex s = isDiscrete() ? Complex(1.0, 0.0) : Complex(0.0, 0.0);
    return evalAt(s).realPart();
}

StateSpace
StateSpace::dual() const
{
    return StateSpace(a.transpose(), c.transpose(), b.transpose(),
                      d.transpose(), ts);
}

StateSpace
StateSpace::scaled(const Matrix& out_scale, const Matrix& in_scale) const
{
    return StateSpace(a, b * in_scale, out_scale * c,
                      out_scale * d * in_scale, ts);
}

Vector
stepOnce(const StateSpace& sys, Vector& x, const Vector& u)
{
    if (x.size() != sys.numStates() || u.size() != sys.numInputs()) {
        throw std::invalid_argument("stepOnce: dimension mismatch");
    }
    Vector y = sys.c * x + sys.d * u;
    x = sys.a * x + sys.b * u;
    return y;
}

std::vector<Vector>
simulate(const StateSpace& sys, const std::vector<Vector>& inputs, Vector x0)
{
    if (!sys.isDiscrete()) {
        throw std::invalid_argument("simulate: system must be discrete");
    }
    Vector x = x0.empty() ? Vector::zeros(sys.numStates()) : std::move(x0);
    std::vector<Vector> outputs;
    outputs.reserve(inputs.size());
    for (const Vector& u : inputs) {
        outputs.push_back(stepOnce(sys, x, u));
    }
    return outputs;
}

std::vector<Vector>
stepResponse(const StateSpace& sys, std::size_t input_idx, std::size_t steps)
{
    if (input_idx >= sys.numInputs()) {
        throw std::invalid_argument("stepResponse: bad input index");
    }
    std::vector<Vector> inputs(steps, Vector::zeros(sys.numInputs()));
    for (Vector& u : inputs) {
        u[input_idx] = 1.0;
    }
    return simulate(sys, inputs);
}

}  // namespace yukta::control
