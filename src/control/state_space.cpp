#include "control/state_space.h"

#include <cmath>
#include <stdexcept>

#include "linalg/cmatrix.h"
#include "linalg/eig.h"
#include "linalg/lu.h"

namespace yukta::control {

using linalg::CMatrix;
using linalg::Complex;
using linalg::Matrix;
using linalg::Vector;

StateSpace::StateSpace(Matrix a_in, Matrix b_in, Matrix c_in, Matrix d_in,
                       double ts_in)
    : a(std::move(a_in)), b(std::move(b_in)), c(std::move(c_in)),
      d(std::move(d_in)), ts(ts_in)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("StateSpace: A must be square");
    }
    if (b.rows() != a.rows()) {
        throw std::invalid_argument("StateSpace: B row count != states");
    }
    if (c.cols() != a.rows()) {
        throw std::invalid_argument("StateSpace: C col count != states");
    }
    if (d.rows() != c.rows() || d.cols() != b.cols()) {
        throw std::invalid_argument("StateSpace: D shape mismatch");
    }
    if (ts < 0.0) {
        throw std::invalid_argument("StateSpace: negative sample time");
    }
}

StateSpace
StateSpace::gain(const Matrix& g, double ts)
{
    return StateSpace(Matrix(0, 0), Matrix(0, g.cols()),
                      Matrix(g.rows(), 0), g, ts);
}

std::vector<Complex>
StateSpace::poles() const
{
    return linalg::eigenvalues(a);
}

bool
StateSpace::isStable(double margin) const
{
    if (numStates() == 0) {
        return true;
    }
    if (isDiscrete()) {
        return linalg::spectralRadius(a) < 1.0 - margin;
    }
    return linalg::spectralAbscissa(a) < -margin;
}

CMatrix
StateSpace::evalAt(Complex s) const
{
    std::size_t n = numStates();
    if (n == 0) {
        return CMatrix(d);
    }
    // (sI - A)
    CMatrix si_a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j < n; ++j) {
            si_a(i, j) = Complex(-a(i, j), 0.0);
        }
        si_a(i, i) += s;
    }
    CMatrix x = csolve(si_a, CMatrix(b));
    return CMatrix(c) * x + CMatrix(d);
}

CMatrix
StateSpace::freqResponse(double w) const
{
    if (isDiscrete()) {
        return evalAt(std::exp(Complex(0.0, w * ts)));
    }
    return evalAt(Complex(0.0, w));
}

Matrix
StateSpace::dcGain() const
{
    Complex s = isDiscrete() ? Complex(1.0, 0.0) : Complex(0.0, 0.0);
    return evalAt(s).realPart();
}

StateSpace
StateSpace::dual() const
{
    return StateSpace(a.transpose(), c.transpose(), b.transpose(),
                      d.transpose(), ts);
}

StateSpace
StateSpace::scaled(const Matrix& out_scale, const Matrix& in_scale) const
{
    return StateSpace(a, b * in_scale, out_scale * c,
                      out_scale * d * in_scale, ts);
}

Vector
stepOnce(const StateSpace& sys, Vector& x, const Vector& u)
{
    if (x.size() != sys.numStates() || u.size() != sys.numInputs()) {
        throw std::invalid_argument("stepOnce: dimension mismatch");
    }
    Vector y = sys.c * x + sys.d * u;
    x = sys.a * x + sys.b * u;
    return y;
}

std::vector<Vector>
simulate(const StateSpace& sys, const std::vector<Vector>& inputs, Vector x0)
{
    if (!sys.isDiscrete()) {
        throw std::invalid_argument("simulate: system must be discrete");
    }
    Vector x = x0.empty() ? Vector::zeros(sys.numStates()) : std::move(x0);
    std::vector<Vector> outputs;
    outputs.reserve(inputs.size());
    for (const Vector& u : inputs) {
        outputs.push_back(stepOnce(sys, x, u));
    }
    return outputs;
}

std::vector<Vector>
stepResponse(const StateSpace& sys, std::size_t input_idx, std::size_t steps)
{
    if (input_idx >= sys.numInputs()) {
        throw std::invalid_argument("stepResponse: bad input index");
    }
    std::vector<Vector> inputs(steps, Vector::zeros(sys.numInputs()));
    for (Vector& u : inputs) {
        u[input_idx] = 1.0;
    }
    return simulate(sys, inputs);
}

}  // namespace yukta::control
