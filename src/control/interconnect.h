#ifndef YUKTA_CONTROL_INTERCONNECT_H_
#define YUKTA_CONTROL_INTERCONNECT_H_

/**
 * @file
 * Interconnections of LTI systems: series, parallel, feedback, block
 * append, and the linear fractional transformations (LFTs) used to
 * close generalized plants with controllers or uncertainty blocks.
 */

#include "control/state_space.h"

namespace yukta::control {

/** @return g2 * g1 (u -> g1 -> g2 -> y). */
StateSpace series(const StateSpace& g1, const StateSpace& g2);

/** @return g1 + g2 (same inputs, outputs added). */
StateSpace parallel(const StateSpace& g1, const StateSpace& g2);

/** @return diag(g1, g2): inputs and outputs concatenated. */
StateSpace append(const StateSpace& g1, const StateSpace& g2);

/**
 * Negative-feedback closed loop from reference to plant output:
 * y = G K (r - y), i.e. T = (I + G K)^{-1} G K.
 *
 * @param g plant.
 * @param k controller in the feedback path (identity when omitted
 *        makes T = (I+G)^{-1} G).
 * @throws std::runtime_error when the loop is ill-posed (I + D_g D_k
 *         singular).
 */
StateSpace feedback(const StateSpace& g, const StateSpace& k);

/**
 * Lower LFT: closes the bottom ports of a generalized plant P with
 * the controller K.
 *
 * P maps [w; u] -> [z; y] with nz/nw the performance channel sizes;
 * K maps y -> u. The result maps w -> z.
 *
 * @param p generalized plant.
 * @param k controller; k.numInputs() must equal ny, k.numOutputs() nu.
 * @param nz number of performance outputs z (the first nz outputs).
 * @param nw number of exogenous inputs w (the first nw inputs).
 */
StateSpace lftLower(const StateSpace& p, const StateSpace& k,
                    std::size_t nz, std::size_t nw);

/**
 * Upper LFT: closes the top ports of a generalized plant P with the
 * (uncertainty) block Delta.
 *
 * P maps [d; w] -> [f; z] where d/f are the first ndelta_in/ndelta_out
 * ports; Delta maps f -> d. The result maps w -> z.
 */
StateSpace lftUpper(const StateSpace& p, const StateSpace& delta,
                    std::size_t ndelta_out, std::size_t ndelta_in);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_INTERCONNECT_H_
