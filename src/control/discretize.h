#ifndef YUKTA_CONTROL_DISCRETIZE_H_
#define YUKTA_CONTROL_DISCRETIZE_H_

/**
 * @file
 * Bilinear (Tustin) transformation between continuous and discrete
 * time. Yukta synthesizes H-infinity controllers in continuous time
 * (where the two-Riccati formulas are clean) and maps them to the
 * 500 ms controller invocation period with these routines.
 */

#include "control/state_space.h"

namespace yukta::control {

/**
 * Discretizes a continuous-time system with the bilinear (Tustin)
 * map s = (2/Ts)(z-1)/(z+1).
 *
 * @param sys continuous-time system.
 * @param ts sample period in seconds (> 0).
 * @throws std::invalid_argument when @p sys is discrete or ts <= 0.
 * @throws std::runtime_error when (I - A Ts/2) is singular.
 */
StateSpace c2d(const StateSpace& sys, double ts);

/**
 * Maps a discrete-time system back to continuous time with the
 * inverse bilinear transformation.
 *
 * @throws std::runtime_error when (A + I) is singular (pole at z=-1).
 */
StateSpace d2c(const StateSpace& sys);

/**
 * Zero-order-hold discretization (exact for piecewise-constant
 * inputs, the semantics of a sampled controller driving real
 * actuators): [Ad, Bd] from the matrix exponential of the augmented
 * [[A, B], [0, 0]] * ts.
 */
StateSpace c2dZoh(const StateSpace& sys, double ts);

}  // namespace yukta::control

#endif  // YUKTA_CONTROL_DISCRETIZE_H_
