#include "runner/pool.h"

#include <algorithm>
#include <cstdlib>
#include <exception>
#include <memory>
#include <thread>
#include <typeinfo>

#if defined(__GNUG__)
#include <cxxabi.h>
#endif

#include "obs/metrics.h"

namespace yukta::runner {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Executes tasks[i] for every i handed out by the shared counter.
 * The atomic fetch-and-increment is the "stealing": an idle worker
 * grabs the next undone run regardless of how the sweep was sliced,
 * so load imbalance never leaves a worker parked.
 */
void
workerLoop(const std::vector<Task>& tasks, std::atomic<std::size_t>& next,
           std::vector<TaskOutcome>& outcomes,
           const std::atomic<bool>& stop, double timeout_seconds,
           const TaskCallback& on_complete, const RetryPolicy& retry)
{
    for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) {
            return;
        }
        TaskOutcome& out = outcomes[i];
        const Clock::time_point start = Clock::now();
        const bool has_deadline = timeout_seconds > 0.0;
        const Clock::time_point deadline =
            has_deadline ? start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(timeout_seconds))
                         : Clock::time_point{};
        CancelToken token(&stop, deadline, has_deadline);
        const int max_attempts = std::max(1, retry.max_attempts);
        for (;;) {
            ++out.attempts;
            out.error.clear();
            out.error_type.clear();
            try {
                tasks[i](token);
                out.status = TaskOutcome::Status::kOk;
            } catch (const std::exception& e) {
                out.status = TaskOutcome::Status::kError;
                out.error = e.what();
                out.error_type = exceptionTypeName(e);
            } catch (...) {
                out.status = TaskOutcome::Status::kError;
                out.error = "unknown exception";
                out.error_type = "unknown";
            }
            if (out.status != TaskOutcome::Status::kError ||
                out.attempts >= max_attempts || token.expired()) {
                break;
            }
            obs::globalMetrics().counter("runner.retries").add(1);
            if (retry.backoff_seconds > 0.0) {
                std::this_thread::sleep_for(std::chrono::duration<double>(
                    retry.backoff_seconds * out.attempts));
            }
        }
        const Clock::time_point end = Clock::now();
        out.wall_seconds =
            std::chrono::duration<double>(end - start).count();
        if (out.status == TaskOutcome::Status::kOk && has_deadline &&
            end >= deadline) {
            out.status = TaskOutcome::Status::kTimeout;
        }
        if (out.status == TaskOutcome::Status::kTimeout) {
            obs::globalMetrics().counter("runner.timeouts").add(1);
        }
        if (on_complete) {
            on_complete(i, out);
        }
    }
}

}  // namespace

std::string
exceptionTypeName(const std::exception& e)
{
    const char* raw = typeid(e).name();
#if defined(__GNUG__)
    int status = 0;
    std::unique_ptr<char, void (*)(void*)> demangled(
        abi::__cxa_demangle(raw, nullptr, nullptr, &status), std::free);
    if (status == 0 && demangled) {
        return demangled.get();
    }
#endif
    return raw;
}

std::string
taskStatusName(TaskOutcome::Status status)
{
    switch (status) {
      case TaskOutcome::Status::kOk:
        return "ok";
      case TaskOutcome::Status::kError:
        return "error";
      case TaskOutcome::Status::kTimeout:
        return "timeout";
    }
    return "unknown";
}

std::vector<TaskOutcome>
runOnPool(const std::vector<Task>& tasks, std::size_t num_workers,
          double timeout_seconds, const TaskCallback& on_complete,
          const RetryPolicy& retry)
{
    std::vector<TaskOutcome> outcomes(tasks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};

    if (num_workers <= 1) {
        workerLoop(tasks, next, outcomes, stop, timeout_seconds,
                   on_complete, retry);
        return outcomes;
    }

    const std::size_t n = std::min(num_workers, tasks.size());
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
        workers.emplace_back([&] {
            workerLoop(tasks, next, outcomes, stop, timeout_seconds,
                       on_complete, retry);
        });
    }
    for (std::thread& t : workers) {
        t.join();
    }
    return outcomes;
}

}  // namespace yukta::runner
