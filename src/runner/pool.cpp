#include "runner/pool.h"

#include <algorithm>
#include <exception>
#include <thread>

namespace yukta::runner {

namespace {

using Clock = std::chrono::steady_clock;

/**
 * Executes tasks[i] for every i handed out by the shared counter.
 * The atomic fetch-and-increment is the "stealing": an idle worker
 * grabs the next undone run regardless of how the sweep was sliced,
 * so load imbalance never leaves a worker parked.
 */
void
workerLoop(const std::vector<Task>& tasks, std::atomic<std::size_t>& next,
           std::vector<TaskOutcome>& outcomes,
           const std::atomic<bool>& stop, double timeout_seconds,
           const TaskCallback& on_complete)
{
    for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= tasks.size()) {
            return;
        }
        TaskOutcome& out = outcomes[i];
        const Clock::time_point start = Clock::now();
        const bool has_deadline = timeout_seconds > 0.0;
        const Clock::time_point deadline =
            has_deadline ? start + std::chrono::duration_cast<Clock::duration>(
                               std::chrono::duration<double>(timeout_seconds))
                         : Clock::time_point{};
        CancelToken token(&stop, deadline, has_deadline);
        try {
            tasks[i](token);
            out.status = TaskOutcome::Status::kOk;
        } catch (const std::exception& e) {
            out.status = TaskOutcome::Status::kError;
            out.error = e.what();
        } catch (...) {
            out.status = TaskOutcome::Status::kError;
            out.error = "unknown exception";
        }
        const Clock::time_point end = Clock::now();
        out.wall_seconds =
            std::chrono::duration<double>(end - start).count();
        if (out.status == TaskOutcome::Status::kOk && has_deadline &&
            end >= deadline) {
            out.status = TaskOutcome::Status::kTimeout;
        }
        if (on_complete) {
            on_complete(i, out);
        }
    }
}

}  // namespace

std::string
taskStatusName(TaskOutcome::Status status)
{
    switch (status) {
      case TaskOutcome::Status::kOk:
        return "ok";
      case TaskOutcome::Status::kError:
        return "error";
      case TaskOutcome::Status::kTimeout:
        return "timeout";
    }
    return "unknown";
}

std::vector<TaskOutcome>
runOnPool(const std::vector<Task>& tasks, std::size_t num_workers,
          double timeout_seconds, const TaskCallback& on_complete)
{
    std::vector<TaskOutcome> outcomes(tasks.size());
    std::atomic<std::size_t> next{0};
    std::atomic<bool> stop{false};

    if (num_workers <= 1) {
        workerLoop(tasks, next, outcomes, stop, timeout_seconds,
                   on_complete);
        return outcomes;
    }

    const std::size_t n = std::min(num_workers, tasks.size());
    std::vector<std::thread> workers;
    workers.reserve(n);
    for (std::size_t w = 0; w < n; ++w) {
        workers.emplace_back([&] {
            workerLoop(tasks, next, outcomes, stop, timeout_seconds,
                       on_complete);
        });
    }
    for (std::thread& t : workers) {
        t.join();
    }
    return outcomes;
}

}  // namespace yukta::runner
