#ifndef YUKTA_RUNNER_POOL_H_
#define YUKTA_RUNNER_POOL_H_

/**
 * @file
 * Fixed-size worker pool for experiment sweeps. Workers steal runs
 * from a shared queue, so long runs do not serialize behind short
 * ones. Each task gets cooperative cancellation (a deadline token it
 * may poll) and exception capture: one diverging or throwing run is
 * reported in its outcome instead of killing the sweep.
 */

#include <atomic>
#include <chrono>
#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace yukta::runner {

/**
 * Cooperative cancellation handle passed to every pool task. Long
 * tasks should poll expired() at convenient boundaries (e.g. once per
 * simulated control period) and return early when it fires.
 */
class CancelToken
{
  public:
    CancelToken() = default;
    /** Wraps the pool's stop flag and an optional deadline. */
    CancelToken(const std::atomic<bool>* stop,
                std::chrono::steady_clock::time_point deadline,
                bool has_deadline)
        : stop_(stop), deadline_(deadline), has_deadline_(has_deadline)
    {
    }

    /** True once the pool is shutting down or the deadline passed. */
    bool expired() const
    {
        if (stop_ != nullptr && stop_->load(std::memory_order_relaxed)) {
            return true;
        }
        return has_deadline_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

    /** True when only the per-task deadline (not shutdown) fired. */
    bool deadlinePassed() const
    {
        return has_deadline_ &&
               std::chrono::steady_clock::now() >= deadline_;
    }

  private:
    const std::atomic<bool>* stop_ = nullptr;
    std::chrono::steady_clock::time_point deadline_{};
    bool has_deadline_ = false;
};

/** What happened to one pool task. */
struct TaskOutcome
{
    enum class Status
    {
        kOk,       ///< Ran to completion.
        kError,    ///< Threw; .error holds the message.
        kTimeout,  ///< Finished after (or stopped at) its deadline.
    };

    Status status = Status::kOk;
    std::string error;          ///< Exception text for kError.
    std::string error_type;     ///< Demangled exception type for kError.
    int attempts = 0;           ///< Times the task body was entered.
    double wall_seconds = 0.0;  ///< Wall-clock time across attempts.
};

/** @return a human-readable name for @p status. */
std::string taskStatusName(TaskOutcome::Status status);

/** @return the demangled dynamic type name of @p e (best effort). */
std::string exceptionTypeName(const std::exception& e);

/**
 * Bounded retry for transient task failures. Only kError outcomes are
 * retried (a timeout would just time out again, and retrying past the
 * pool's stop flag would stall shutdown); the task body must therefore
 * be idempotent. Backoff is linear: attempt k sleeps
 * k * backoff_seconds before re-entering the body.
 */
struct RetryPolicy
{
    int max_attempts = 1;         ///< Total tries; <= 1 disables retry.
    double backoff_seconds = 0.0; ///< Linear backoff base.
};

/** A pool task; poll the token to honor timeouts. */
using Task = std::function<void(const CancelToken&)>;

/**
 * Per-task completion hook, called by the worker that ran the task
 * right after its outcome is final. Called concurrently from
 * different workers; the callee synchronizes.
 */
using TaskCallback =
    std::function<void(std::size_t index, const TaskOutcome& outcome)>;

/**
 * Runs @p tasks on a fixed-size pool and returns outcomes aligned
 * with the task indices (order-independent of execution order).
 *
 * @param tasks the work items; each is invoked exactly once.
 * @param num_workers worker threads; 0 or 1 runs inline on the
 *   calling thread (no threads spawned), useful for determinism
 *   baselines.
 * @param timeout_seconds per-task wall-clock deadline; <= 0 disables.
 *   A task whose wall time exceeds the deadline is reported as
 *   kTimeout whether or not it polled the token.
 * @param on_complete optional per-task completion hook.
 * @param retry bounded retry-with-backoff for throwing tasks.
 */
std::vector<TaskOutcome> runOnPool(const std::vector<Task>& tasks,
                                   std::size_t num_workers,
                                   double timeout_seconds = 0.0,
                                   const TaskCallback& on_complete = {},
                                   const RetryPolicy& retry = {});

}  // namespace yukta::runner

#endif  // YUKTA_RUNNER_POOL_H_
