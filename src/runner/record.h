#ifndef YUKTA_RUNNER_RECORD_H_
#define YUKTA_RUNNER_RECORD_H_

/**
 * @file
 * Structured run records for the sweep engine. Every run produces one
 * RunRecord (what was run, what came out, where it came from), which
 * serializes to one JSON line so sweep outputs can be appended,
 * grepped, and aggregated without a parser dependency.
 */

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>

#include "controllers/multilayer.h"
#include "core/schemes.h"
#include "runner/pool.h"

namespace yukta::runner {

/** One experiment run: identity, provenance, and results. */
struct RunRecord
{
    std::size_t index = 0;       ///< Position in the expanded sweep.
    std::string key;             ///< Content hash of the run config.
    core::Scheme scheme = core::Scheme::kCoordinatedHeuristic;
    std::string workload;        ///< App or mix name.
    std::uint32_t seed = 1;
    std::string fault_plan;      ///< Fault plan spec; "" = clean run.
    bool supervised = false;     ///< Supervisor was enabled.
    TaskOutcome::Status status = TaskOutcome::Status::kOk;
    std::string error;           ///< Exception text when status=error.
    std::string error_type;      ///< Exception type when status=error.
    int attempts = 0;            ///< Pool attempts (retries included).
    bool cache_hit = false;      ///< Metrics came from the run cache.
    double wall_seconds = 0.0;   ///< Wall-clock cost of this run.
    long long trace_events = 0;  ///< Structured events captured (0 =
                                 ///< event tracing was off).
    controllers::RunMetrics metrics;  ///< Empty unless status=ok.
};

/**
 * @return @p record as one JSON object on a single line (no trailing
 * newline). The trace is summarized by its sample count; use
 * trace_interval runs directly when the full trace is needed.
 */
std::string toJsonLine(const RunRecord& record);

/** Writes @p record to @p os as a JSONL row (with newline). */
void writeJsonLine(std::ostream& os, const RunRecord& record);

/**
 * Thread-safe progress reporter: one short line per completed run.
 * Null @p os disables reporting (all calls become no-ops).
 */
class ProgressReporter
{
  public:
    /** Reports to @p os (null disables); @p total sizes "k/N". */
    explicit ProgressReporter(std::ostream* os, std::size_t total)
        : os_(os), total_(total)
    {
    }

    /** Reports one completed run; safe from any worker thread. */
    void report(const RunRecord& record);

  private:
    std::ostream* os_;
    std::size_t total_;
    std::size_t done_ = 0;
    std::mutex mutex_;
};

}  // namespace yukta::runner

#endif  // YUKTA_RUNNER_RECORD_H_
