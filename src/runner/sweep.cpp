#include "runner/sweep.h"

#include <algorithm>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/cache.h"
#include "core/contracts.h"
#include "fault/plan.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "platform/apps.h"

#ifdef __unix__
#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>
#endif

namespace yukta::runner {

using controllers::RunMetrics;

namespace {

// v2: adds violation time, supervision flag, fault-injection tallies,
// and the supervisor summary to the cached result format.
constexpr int kRunFormatVersion = 2;

/**
 * Process-wide lock for the shared cache directory: an in-process
 * mutex (flock does not exclude threads sharing one file
 * description) plus an advisory flock on <cachedir>/.lock so
 * concurrently-running benches can share yukta_cache. Readers do not
 * take the lock: atomicWriteFile's rename guarantees they always see
 * a complete file.
 */
class CacheLockGuard
{
  public:
    CacheLockGuard() : guard_(processMutex())
    {
#ifdef __unix__
        fd_ = lockFd();
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_EX);
        }
#endif
    }

    ~CacheLockGuard()
    {
#ifdef __unix__
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
        }
#endif
    }

    CacheLockGuard(const CacheLockGuard&) = delete;
    CacheLockGuard& operator=(const CacheLockGuard&) = delete;

  private:
    static std::mutex& processMutex()
    {
        static std::mutex m;
        return m;
    }

#ifdef __unix__
    static int lockFd()
    {
        static const int fd = ::open(
            (core::cacheDir() + "/.lock").c_str(), O_CREAT | O_RDWR, 0644);
        return fd;
    }

    int fd_ = -1;
#endif
    std::lock_guard<std::mutex> guard_;
};

/** 64-bit FNV-1a over the canonical run description. */
std::uint64_t
fnv1a(const std::string& s)
{
    std::uint64_t h = 1469598103934665603ull;
    for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
    }
    return h;
}

std::string
canonicalDouble(double v)
{
    std::ostringstream os;
    os << std::setprecision(17) << v;
    return os.str();
}

}  // namespace

std::string
schemeId(core::Scheme scheme)
{
    switch (scheme) {
      case core::Scheme::kCoordinatedHeuristic:
        return "coordinated";
      case core::Scheme::kDecoupledHeuristic:
        return "decoupled";
      case core::Scheme::kYuktaHwSsvOsHeuristic:
        return "yukta-hw";
      case core::Scheme::kYuktaFull:
        return "yukta-full";
      case core::Scheme::kDecoupledLqg:
        return "lqg-decoupled";
      case core::Scheme::kMonolithicLqg:
        return "lqg-mono";
    }
    return "unknown";
}

std::optional<core::Scheme>
schemeFromId(const std::string& id)
{
    for (core::Scheme s : core::allSchemes()) {
        if (schemeId(s) == id) {
            return s;
        }
    }
    return std::nullopt;
}

std::vector<RunSpec>
expandSweep(const SweepSpec& spec)
{
    std::vector<RunSpec> runs;
    runs.reserve(spec.schemes.size() * spec.workloads.size() *
                 spec.seeds.size());
    for (core::Scheme scheme : spec.schemes) {
        for (const std::string& workload : spec.workloads) {
            for (std::uint32_t seed : spec.seeds) {
                RunSpec run;
                run.scheme = scheme;
                run.workload = workload;
                run.seed = seed;
                run.max_seconds = spec.max_seconds;
                run.trace_interval = spec.trace_interval;
                run.fault_plan = spec.fault_plan;
                run.supervised = spec.supervised;
                runs.push_back(std::move(run));
            }
        }
    }
    return runs;
}

std::string
runKey(const RunSpec& run, const std::string& artifact_tag)
{
    std::ostringstream os;
    os << "run|v" << kRunFormatVersion << "|" << artifact_tag << "|"
       << schemeId(run.scheme) << "|" << run.workload << "|" << run.seed
       << "|" << canonicalDouble(run.max_seconds) << "|"
       << canonicalDouble(run.trace_interval) << "|" << run.fault_plan
       << "|" << (run.supervised ? 1 : 0);
    std::ostringstream hex;
    hex << std::hex << std::setw(16) << std::setfill('0')
        << fnv1a(os.str());
    return hex.str();
}

std::string
runTraceId(std::size_t index, const RunSpec& run)
{
    std::ostringstream os;
    os << std::setw(3) << std::setfill('0') << index << "-"
       << schemeId(run.scheme) << "-" << run.workload << "-s" << run.seed;
    return os.str();
}

platform::Workload
makeWorkload(const std::string& name)
{
    auto mixes = platform::AppCatalog::mixNames();
    if (std::find(mixes.begin(), mixes.end(), name) != mixes.end()) {
        return platform::AppCatalog::getMix(name);
    }
    return platform::Workload(platform::AppCatalog::get(name));
}

bool
saveRunMetrics(const std::string& path, const RunMetrics& m)
{
    std::ostringstream os;
    os << "yukta-run " << kRunFormatVersion << "\n";
    os << std::setprecision(17);
    os << m.exec_time << " " << m.energy << " " << m.exd << " "
       << (m.completed ? 1 : 0) << " " << m.emergency_time << " "
       << m.periods << "\n";
    // v2 robustness block: board-truth violation time, whether the
    // supervisor ran, injector tallies, and the supervisor summary
    // (events, like traces, are not persisted).
    os << m.violation_time << " " << (m.supervised ? 1 : 0) << " "
       << m.faults.corrupted_ticks << " " << m.faults.corrupted_fields
       << " " << m.faults.actuator_faults << " " << m.faults.dropped_ticks
       << " " << m.supervisor.transition_count << " "
       << m.supervisor.invalid_ticks << " " << m.supervisor.repaired_fields
       << " " << m.supervisor.repaired_commands << " "
       << m.supervisor.skipped_ticks << " " << m.supervisor.time_nominal
       << " " << m.supervisor.time_hold << " " << m.supervisor.time_fallback
       << " " << m.supervisor.time_safe << "\n";
    CacheLockGuard lock;
    return core::atomicWriteFile(path, os.str());
}

std::optional<RunMetrics>
loadRunMetrics(const std::string& path)
{
    std::ifstream is(path);
    if (!is) {
        return std::nullopt;
    }
    std::string magic;
    int version = 0;
    if (!(is >> magic >> version) || magic != "yukta-run" ||
        version != kRunFormatVersion) {
        return std::nullopt;
    }
    RunMetrics m;
    int completed = 0;
    if (!(is >> m.exec_time >> m.energy >> m.exd >> completed >>
          m.emergency_time >> m.periods)) {
        return std::nullopt;
    }
    m.completed = completed != 0;
    int supervised = 0;
    if (!(is >> m.violation_time >> supervised >>
          m.faults.corrupted_ticks >> m.faults.corrupted_fields >>
          m.faults.actuator_faults >> m.faults.dropped_ticks >>
          m.supervisor.transition_count >> m.supervisor.invalid_ticks >>
          m.supervisor.repaired_fields >> m.supervisor.repaired_commands >>
          m.supervisor.skipped_ticks >> m.supervisor.time_nominal >>
          m.supervisor.time_hold >> m.supervisor.time_fallback >>
          m.supervisor.time_safe)) {
        return std::nullopt;
    }
    m.supervised = supervised != 0;
    return m;
}

std::size_t
SweepResult::countStatus(TaskOutcome::Status status) const
{
    std::size_t n = 0;
    for (const RunRecord& r : records) {
        if (r.status == status) {
            ++n;
        }
    }
    return n;
}

const RunMetrics*
SweepResult::metricsFor(core::Scheme scheme, const std::string& workload,
                        std::uint32_t seed) const
{
    for (const RunRecord& r : records) {
        if (r.scheme == scheme && r.workload == workload &&
            r.seed == seed && r.status == TaskOutcome::Status::kOk) {
            return &r.metrics;
        }
    }
    return nullptr;
}

SweepResult
runAll(const core::Artifacts& artifacts, const std::vector<RunSpec>& runs,
       const std::string& artifact_tag, const RunnerOptions& options)
{
    const bool traced = !options.trace_dir.empty();
    const bool trace_jsonl = options.trace_format == "jsonl" ||
                             options.trace_format == "both";
    const bool trace_chrome = options.trace_format == "chrome" ||
                              options.trace_format == "both";
    if (traced && !trace_jsonl && !trace_chrome) {
        throw std::invalid_argument("runAll: trace_format must be "
                                    "\"jsonl\", \"chrome\", or \"both\"");
    }
    // One sink per run, pre-built so the identity (and therefore the
    // trace content) never depends on which worker executes the run.
    std::vector<std::unique_ptr<obs::TraceSink>> sinks;
    if (traced) {
        sinks.reserve(runs.size());
        for (std::size_t i = 0; i < runs.size(); ++i) {
            sinks.push_back(
                std::make_unique<obs::TraceSink>(runTraceId(i, runs[i])));
        }
    }

    SweepResult result;
    result.records.resize(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        RunRecord& r = result.records[i];
        r.index = i;
        r.key = runKey(runs[i], artifact_tag);
        r.scheme = runs[i].scheme;
        r.workload = runs[i].workload;
        r.seed = runs[i].seed;
        r.fault_plan = runs[i].fault_plan;
        r.supervised = runs[i].supervised;
    }

    ProgressReporter progress(options.progress, runs.size());

    std::vector<Task> tasks;
    tasks.reserve(runs.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
        tasks.push_back([&, i](const CancelToken& token) {
            const RunSpec& run = runs[i];
            RunRecord& record = result.records[i];
            // Traced runs carry their full trace (or event log) in
            // memory and are never persisted, so they bypass the
            // result cache.
            const bool cacheable = options.use_cache &&
                                   run.trace_interval <= 0.0 && !traced;
            if (cacheable) {
                auto cached = loadRunMetrics(
                    core::cachePath("run-" + record.key));
                if (cached) {
                    record.metrics = std::move(*cached);
                    record.cache_hit = true;
                    obs::globalMetrics().counter("runner.cache_hit").add(1);
                    return;
                }
                obs::globalMetrics().counter("runner.cache_miss").add(1);
            }
            if (token.expired()) {
                throw std::runtime_error(
                    "cancelled before the run started");
            }
            auto system = core::makeSystem(run.scheme, artifacts,
                                           makeWorkload(run.workload),
                                           run.seed);
            if (run.trace_interval > 0.0) {
                system.enableTrace(run.trace_interval);
            }
            // Parsed inside the task so a malformed plan fails only
            // this run (captured in its record), not the whole sweep.
            if (!run.fault_plan.empty()) {
                system.attachFaultInjector(
                    fault::FaultPlan::parse(run.fault_plan));
            }
            if (run.supervised) {
                system.enableSupervisor();
            }
            if (traced) {
                // A retried run must not replay stale events into its
                // fresh attempt's trace.
                sinks[i]->clear();
                system.attachTraceSink(sinks[i].get());
            }
            record.metrics = system.run(run.max_seconds);
            if (cacheable) {
                saveRunMetrics(core::cachePath("run-" + record.key),
                               record.metrics);
                obs::globalMetrics().counter("runner.cache_store").add(1);
            }
        });
    }

    TaskCallback on_complete;
    if (options.progress != nullptr) {
        on_complete = [&](std::size_t i, const TaskOutcome& outcome) {
            // The record's identity and result fields were written by
            // this same worker; merge the outcome into a copy so the
            // live feed shows the final status.
            RunRecord r = result.records[i];
            r.status = outcome.status;
            r.error = outcome.error;
            r.error_type = outcome.error_type;
            r.attempts = outcome.attempts;
            r.wall_seconds = outcome.wall_seconds;
            progress.report(r);
        };
    }

    RetryPolicy retry;
    retry.max_attempts = options.run_attempts;
    retry.backoff_seconds = options.retry_backoff_seconds;
    std::vector<TaskOutcome> outcomes =
        runOnPool(tasks, options.workers, options.run_timeout_seconds,
                  on_complete, retry);

    for (std::size_t i = 0; i < runs.size(); ++i) {
        RunRecord& r = result.records[i];
        r.status = outcomes[i].status;
        r.error = outcomes[i].error;
        r.error_type = outcomes[i].error_type;
        r.attempts = outcomes[i].attempts;
        r.wall_seconds = outcomes[i].wall_seconds;
        obs::globalMetrics()
            .histogram("runner.run_wall_seconds")
            .observe(r.wall_seconds);
    }

    // Trace files are written post-pool in index order, so their names
    // and contents are independent of worker count and completion
    // order (the same property the JSONL record stream has).
    if (traced) {
        std::filesystem::create_directories(options.trace_dir);
        for (std::size_t i = 0; i < runs.size(); ++i) {
            result.records[i].trace_events =
                static_cast<long long>(sinks[i]->eventCount());
            std::string base = options.trace_dir;
            base += '/';
            base += sinks[i]->runId();
            if (trace_jsonl) {
                std::ostringstream os;
                sinks[i]->writeJsonl(os);
                core::atomicWriteFile(base + ".trace.jsonl", os.str());
            }
            if (trace_chrome) {
                std::ostringstream os;
                sinks[i]->writeChrome(os);
                core::atomicWriteFile(base + ".chrome.json", os.str());
            }
        }
    }

    // Progress is emitted per-run by workers in completion order; the
    // JSONL stream instead gets the records post-hoc in index order,
    // so the file is deterministic regardless of worker count.
    if (options.jsonl != nullptr) {
        for (const RunRecord& r : result.records) {
            writeJsonLine(*options.jsonl, r);
        }
    }

    if (options.emit_metrics) {
        obs::globalMetrics()
            .gauge("contracts.checks")
            .set(static_cast<double>(contracts::checkCount().load()));
        result.metrics_json = obs::globalMetrics().snapshotJson();
    }
    return result;
}

SweepResult
runSweep(const core::Artifacts& artifacts, const SweepSpec& spec,
         const RunnerOptions& options)
{
    return runAll(artifacts, expandSweep(spec), spec.artifact_tag, options);
}

}  // namespace yukta::runner
