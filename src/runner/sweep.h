#ifndef YUKTA_RUNNER_SWEEP_H_
#define YUKTA_RUNNER_SWEEP_H_

/**
 * @file
 * Declarative experiment sweeps over (scheme x workload x seed) with
 * a work-stealing pool and a persistent, concurrency-safe run-result
 * cache layered on core/cache.
 *
 * A sweep expands to a deterministic run list; each run is keyed by a
 * content hash of everything that determines its outcome, so results
 * can be reused across bench invocations (and shared between
 * concurrently-running benches: cache writes go through an atomic
 * temp-file + rename protected by a process-wide file lock).
 * Aggregated results are index-ordered and therefore independent of
 * worker count and completion order.
 */

#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "core/schemes.h"
#include "platform/workload.h"
#include "runner/record.h"

namespace yukta::runner {

/** Stable short identifier for CLI flags and run keys. */
std::string schemeId(core::Scheme scheme);

/** Parses a schemeId() string (e.g. "yukta-full"). */
std::optional<core::Scheme> schemeFromId(const std::string& id);

/** One fully-specified experiment run. */
struct RunSpec
{
    core::Scheme scheme = core::Scheme::kCoordinatedHeuristic;
    std::string workload;         ///< App name or Sec. VI-C mix name.
    std::uint32_t seed = 1;
    double max_seconds = 1200.0;  ///< Simulated-time budget.
    double trace_interval = 0.0;  ///< >0 records a trace (uncached).
    std::string fault_plan;       ///< fault::FaultPlan spec; "" = none.
    bool supervised = false;      ///< Wrap controllers in a Supervisor.
};

/** A declarative sweep: the cross product of the axes. */
struct SweepSpec
{
    std::vector<core::Scheme> schemes;
    std::vector<std::string> workloads;
    std::vector<std::uint32_t> seeds = {1};
    double max_seconds = 1200.0;
    double trace_interval = 0.0;
    std::string fault_plan;   ///< Applied to every expanded run.
    bool supervised = false;  ///< Applied to every expanded run.

    /**
     * Folded into every run key; must identify the artifact bundle
     * the runs execute against (reuse ArtifactOptions::cache_tag plus
     * any option overrides).
     */
    std::string artifact_tag = "paper";
};

/**
 * Expands the cross product in deterministic scheme-major order:
 * schemes x workloads x seeds.
 */
std::vector<RunSpec> expandSweep(const SweepSpec& spec);

/**
 * @return the content hash (hex) keying one run's cached result:
 * covers scheme, workload, seed, budget, trace interval, fault plan,
 * supervision flag, artifact tag, and the cache format version.
 */
std::string runKey(const RunSpec& run, const std::string& artifact_tag);

/** Resolves an app or mix name to a runnable workload. */
platform::Workload makeWorkload(const std::string& name);

/**
 * @return the stable per-run file/run identifier used for event
 * traces: "NNN-<scheme>-<workload>-sSEED" with a zero-padded index.
 */
std::string runTraceId(std::size_t index, const RunSpec& run);

/**
 * Serializes run metrics to the result cache at @p path (atomic
 * temp-file + rename under the process-wide cache lock).
 * The trace is not persisted.
 */
bool saveRunMetrics(const std::string& path,
                    const controllers::RunMetrics& metrics);

/**
 * Loads cached run metrics. Unreadable, truncated, or
 * version-mismatched files are treated as a miss (std::nullopt),
 * never an error.
 */
std::optional<controllers::RunMetrics>
loadRunMetrics(const std::string& path);

/** Engine knobs. */
struct RunnerOptions
{
    std::size_t workers = 1;     ///< 0/1 = run inline, no threads.
    bool use_cache = true;       ///< Consult/fill the run cache.
    double run_timeout_seconds = 0.0;  ///< Wall clock per run; <=0 off.
    std::ostream* progress = nullptr;  ///< Live one-line-per-run feed.
    std::ostream* jsonl = nullptr;     ///< Records as JSONL (post-run,
                                       ///< index order).
    int run_attempts = 1;              ///< Retries per throwing run.
    double retry_backoff_seconds = 0.0;  ///< Linear backoff base.

    /**
     * Non-empty = write one per-tick structured event trace per run
     * into this directory (created if absent). Traced runs bypass the
     * result cache; the trace files are written post-hoc in index
     * order and are bit-identical regardless of worker count.
     */
    std::string trace_dir;

    /** Trace file format: "jsonl", "chrome", or "both". */
    std::string trace_format = "jsonl";

    /**
     * Snapshot the global metrics registry (cache hit rates, retry
     * counts, wall-time histograms, contract-check count) into
     * SweepResult::metrics_json after the sweep. Off by default: the
     * snapshot includes wall-clock-derived values, so it is the one
     * sweep output that is NOT deterministic.
     */
    bool emit_metrics = false;
};

/** Aggregated sweep output; records are index-ordered. */
struct SweepResult
{
    std::vector<RunRecord> records;

    /**
     * Metrics-registry snapshot (JSON object); empty unless
     * RunnerOptions::emit_metrics was set.
     */
    std::string metrics_json;

    /** @return record count with the given status. */
    std::size_t countStatus(TaskOutcome::Status status) const;

    /**
     * @return the metrics for (scheme, workload, seed), or nullptr
     * when that run is absent or did not finish with status ok.
     */
    const controllers::RunMetrics* metricsFor(core::Scheme scheme,
                                              const std::string& workload,
                                              std::uint32_t seed = 1) const;
};

/**
 * Runs every expanded run of @p spec against @p artifacts on a
 * work-stealing pool and returns index-ordered records. Individual
 * run failures (throw/timeout) are captured in the records; the
 * sweep itself always completes.
 */
SweepResult runSweep(const core::Artifacts& artifacts,
                     const SweepSpec& spec,
                     const RunnerOptions& options = {});

/** As runSweep, for an explicit run list (already expanded). */
SweepResult runAll(const core::Artifacts& artifacts,
                   const std::vector<RunSpec>& runs,
                   const std::string& artifact_tag,
                   const RunnerOptions& options = {});

}  // namespace yukta::runner

#endif  // YUKTA_RUNNER_SWEEP_H_
