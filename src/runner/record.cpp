#include "runner/record.h"

#include <iomanip>
#include <ostream>
#include <sstream>

namespace yukta::runner {

namespace {

/** Escapes a string for embedding in a JSON value. */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\r':
            out += "\\r";
            break;
          case '\t':
            out += "\\t";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                std::ostringstream hex;
                hex << "\\u" << std::hex << std::setw(4)
                    << std::setfill('0') << static_cast<int>(c);
                out += hex.str();
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

std::string
toJsonLine(const RunRecord& r)
{
    std::ostringstream os;
    os << std::setprecision(17);
    os << "{\"key\":\"" << jsonEscape(r.key) << "\""
       << ",\"index\":" << r.index
       << ",\"scheme\":\"" << jsonEscape(core::schemeName(r.scheme)) << "\""
       << ",\"workload\":\"" << jsonEscape(r.workload) << "\""
       << ",\"seed\":" << r.seed
       << ",\"status\":\"" << taskStatusName(r.status) << "\""
       << ",\"cache_hit\":" << (r.cache_hit ? "true" : "false")
       << ",\"wall_seconds\":" << r.wall_seconds
       << ",\"attempts\":" << r.attempts
       << ",\"exec_time\":" << r.metrics.exec_time
       << ",\"energy\":" << r.metrics.energy
       << ",\"exd\":" << r.metrics.exd
       << ",\"completed\":" << (r.metrics.completed ? "true" : "false")
       << ",\"emergency_time\":" << r.metrics.emergency_time
       << ",\"periods\":" << r.metrics.periods
       << ",\"trace_samples\":" << r.metrics.trace.size()
       << ",\"violation_time\":" << r.metrics.violation_time
       << ",\"supervised\":" << (r.supervised ? "true" : "false");
    if (!r.fault_plan.empty()) {
        os << ",\"fault_plan\":\"" << jsonEscape(r.fault_plan) << "\""
           << ",\"faults_ticks\":" << r.metrics.faults.corrupted_ticks
           << ",\"faults_fields\":" << r.metrics.faults.corrupted_fields
           << ",\"faults_actuator\":" << r.metrics.faults.actuator_faults
           << ",\"faults_dropped_ticks\":"
           << r.metrics.faults.dropped_ticks;
    }
    if (r.supervised) {
        const auto& sup = r.metrics.supervisor;
        os << ",\"sup_transitions\":" << sup.transitions()
           << ",\"sup_invalid_ticks\":" << sup.invalid_ticks
           << ",\"sup_repaired_fields\":" << sup.repaired_fields
           << ",\"sup_repaired_commands\":" << sup.repaired_commands
           << ",\"sup_skipped_ticks\":" << sup.skipped_ticks
           << ",\"sup_time_degraded\":" << sup.timeDegraded();
    }
    if (r.trace_events > 0) {
        os << ",\"trace_events\":" << r.trace_events;
    }
    if (!r.error.empty()) {
        os << ",\"error\":\"" << jsonEscape(r.error) << "\"";
    }
    if (!r.error_type.empty()) {
        os << ",\"error_type\":\"" << jsonEscape(r.error_type) << "\"";
    }
    os << "}";
    return os.str();
}

void
writeJsonLine(std::ostream& os, const RunRecord& record)
{
    os << toJsonLine(record) << "\n";
}

void
ProgressReporter::report(const RunRecord& r)
{
    if (os_ == nullptr) {
        return;
    }
    std::lock_guard<std::mutex> lock(mutex_);
    ++done_;
    *os_ << "[" << done_ << "/" << total_ << "] "
         << core::schemeName(r.scheme) << " | " << r.workload << " | seed "
         << r.seed << " | " << taskStatusName(r.status)
         << (r.cache_hit ? " (cached)" : "") << " | " << std::fixed
         << std::setprecision(1) << r.wall_seconds << "s" << std::endl;
}

}  // namespace yukta::runner
