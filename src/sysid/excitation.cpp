#include "sysid/excitation.h"

#include <cmath>
#include <random>
#include <stdexcept>

namespace yukta::sysid {

using linalg::Vector;

std::vector<double>
prbs(std::size_t steps, double lo, double hi, std::size_t hold,
     std::uint32_t seed)
{
    if (hold == 0) {
        throw std::invalid_argument("prbs: hold must be >= 1");
    }
    if (seed == 0) {
        seed = 1;
    }
    std::vector<double> out;
    out.reserve(steps);
    std::uint32_t lfsr = seed & 0xFFFFu;
    double level = lo;
    for (std::size_t i = 0; i < steps; ++i) {
        if (i % hold == 0) {
            // 16-bit maximal LFSR, taps 16 14 13 11.
            std::uint32_t bit = ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^
                                 (lfsr >> 5)) &
                                1u;
            lfsr = (lfsr >> 1) | (bit << 15);
            level = (lfsr & 1u) ? hi : lo;
        }
        out.push_back(level);
    }
    return out;
}

std::vector<double>
randomStaircase(std::size_t steps, double min, double max, double step,
                std::size_t hold, std::uint32_t seed)
{
    if (hold == 0 || max <= min) {
        throw std::invalid_argument("randomStaircase: bad parameters");
    }
    std::mt19937 rng(seed);
    std::size_t levels =
        step > 0.0
            ? static_cast<std::size_t>(std::floor((max - min) / step)) + 1
            : 0;
    std::uniform_int_distribution<std::size_t> level_dist(
        0, levels > 0 ? levels - 1 : 0);
    std::uniform_real_distribution<double> cont_dist(min, max);

    std::vector<double> out;
    out.reserve(steps);
    double value = min;
    for (std::size_t i = 0; i < steps; ++i) {
        if (i % hold == 0) {
            value = levels > 0 ? min + step * level_dist(rng)
                               : cont_dist(rng);
        }
        out.push_back(value);
    }
    return out;
}

std::vector<Vector>
multiChannelExcitation(std::size_t steps, const std::vector<double>& min,
                       const std::vector<double>& max,
                       const std::vector<double>& step, std::size_t hold,
                       std::uint32_t seed)
{
    std::size_t nch = min.size();
    if (max.size() != nch || step.size() != nch || nch == 0) {
        throw std::invalid_argument("multiChannelExcitation: size mismatch");
    }
    std::vector<std::vector<double>> chans(nch);
    for (std::size_t k = 0; k < nch; ++k) {
        // Different holds and seeds decorrelate channels.
        std::size_t h = hold + k;
        chans[k] = randomStaircase(steps, min[k], max[k], step[k], h,
                                   seed + 977u * static_cast<std::uint32_t>(k));
    }
    std::vector<Vector> out(steps, Vector(nch));
    for (std::size_t i = 0; i < steps; ++i) {
        for (std::size_t k = 0; k < nch; ++k) {
            out[i][k] = chans[k][i];
        }
    }
    return out;
}

}  // namespace yukta::sysid
