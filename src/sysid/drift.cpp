#include "sysid/drift.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace yukta::sysid {

using linalg::Vector;

CusumDriftDetector::CusumDriftDetector(std::vector<double> sigma,
                                       const CusumOptions& options)
    : sigma_(std::move(sigma)), opt_(options), g_(sigma_.size(), 0.0)
{
    if (sigma_.empty()) {
        throw std::invalid_argument("CusumDriftDetector: empty sigma");
    }
    for (double& s : sigma_) {
        s = std::max(s, 1e-12);
    }
}

bool
CusumDriftDetector::update(const Vector& error)
{
    if (error.size() != sigma_.size()) {
        throw std::invalid_argument("CusumDriftDetector: size mismatch");
    }
    ++samples_;
    bool crossed = false;
    for (std::size_t i = 0; i < g_.size(); ++i) {
        double z = std::abs(error[i]) / sigma_[i] - opt_.slack_sigma;
        g_[i] = std::max(0.0, g_[i] + z);
        if (!fired_ && g_[i] > opt_.threshold) {
            crossed = true;
        }
    }
    if (crossed) {
        fired_ = true;
    }
    return crossed;
}

double
CusumDriftDetector::maxStat() const
{
    double m = 0.0;
    for (double g : g_) {
        m = std::max(m, g);
    }
    return m;
}

void
CusumDriftDetector::rearm()
{
    std::fill(g_.begin(), g_.end(), 0.0);
    fired_ = false;
}

void
CusumDriftDetector::save(obs::StateWriter& w) const
{
    w.u64("cusum.samples", samples_);
    w.boolean("cusum.fired", fired_);
    w.f64vec("cusum.g", g_);
}

void
CusumDriftDetector::load(obs::StateReader& r)
{
    samples_ = r.u64("cusum.samples");
    fired_ = r.boolean("cusum.fired");
    g_ = r.f64vec("cusum.g");
    if (g_.size() != sigma_.size()) {
        throw std::runtime_error("CusumDriftDetector: state size mismatch");
    }
}

std::vector<double>
residualSigma(const ArxModel& model, const IoData& data)
{
    std::size_t ny = model.numOutputs();
    std::size_t lag0 = model.bLag0();
    std::size_t p = std::max(model.orderA(), model.orderB() + lag0 - 1);
    std::vector<double> acc(ny, 0.0);
    std::size_t count = 0;
    std::vector<Vector> yh(model.orderA());
    std::vector<Vector> uh(model.orderB());
    for (std::size_t t = p; t < data.y.size(); ++t, ++count) {
        for (std::size_t k = 0; k < model.orderA(); ++k) {
            yh[k] = data.y[t - 1 - k];
        }
        for (std::size_t k = 0; k < model.orderB(); ++k) {
            uh[k] = data.u[t - lag0 - k];
        }
        Vector e = model.predict(yh, uh) - data.y[t];
        for (std::size_t j = 0; j < ny; ++j) {
            acc[j] += e[j] * e[j];
        }
    }
    std::vector<double> sigma(ny, 1e-12);
    if (count > 0) {
        for (std::size_t j = 0; j < ny; ++j) {
            sigma[j] = std::max(
                std::sqrt(acc[j] / static_cast<double>(count)), 1e-12);
        }
    }
    return sigma;
}

}  // namespace yukta::sysid
