#ifndef YUKTA_SYSID_DRIFT_H_
#define YUKTA_SYSID_DRIFT_H_

/**
 * @file
 * Prediction-error CUSUM drift detector.
 *
 * The detector watches the one-step prediction error of the *shipped*
 * model against live telemetry. Each output channel accumulates
 *
 *   g_i <- max(0, g_i + |e_i| / sigma_i - slack)
 *
 * where sigma_i is the channel's residual scale on the training data
 * and slack is a dead zone in sigma units; drift is declared when any
 * g_i crosses the threshold. With slack set a few sigma above the
 * nominal residual level the statistic stays pinned at zero on the
 * plant the model was identified on (the ARL property the no-drift
 * bit-identity gate depends on), while a plant-parameter shift pushes
 * |e|/sigma persistently above the dead zone and ramps g linearly.
 *
 * Everything is counter-keyed and deterministic: the statistic after
 * N samples is a pure function of those N errors.
 */

#include <cstddef>
#include <vector>

#include "linalg/vector.h"
#include "obs/stateio.h"
#include "sysid/arx.h"

namespace yukta::sysid {

/** Tuning for CusumDriftDetector. */
struct CusumOptions
{
    /** Per-sample dead zone, in residual-sigma units. */
    double slack_sigma = 6.0;

    /** Accumulated excess (sigma units) that declares drift. */
    double threshold = 60.0;
};

/** Deterministic per-channel CUSUM over normalized prediction errors. */
class CusumDriftDetector
{
  public:
    /**
     * @param sigma per-output residual scale (e.g. residualSigma() of
     *   the shipped model on its training data); floored at 1e-12.
     */
    explicit CusumDriftDetector(std::vector<double> sigma,
                                const CusumOptions& options = {});

    /**
     * Accumulates one prediction-error sample (physical units).
     * @return true exactly when this sample crosses the threshold
     *   (fired() stays latched afterwards).
     */
    bool update(const linalg::Vector& error);

    /** @return true once drift has been declared. */
    bool fired() const { return fired_; }

    /** @return the largest per-channel statistic. */
    double maxStat() const;

    /** @return number of samples accumulated. */
    std::size_t samples() const { return samples_; }

    /** Clears the statistics and the fired latch (post-swap re-arm). */
    void rearm();

    /** Serializes the detector state (bit-exact). */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save(). */
    void load(obs::StateReader& r);

  private:
    std::vector<double> sigma_;
    CusumOptions opt_;
    std::vector<double> g_;
    bool fired_ = false;
    std::size_t samples_ = 0;
};

/**
 * Per-output standard deviation of @p model's one-step prediction
 * error over @p data -- the sigma feeding CusumDriftDetector.
 */
std::vector<double> residualSigma(const ArxModel& model, const IoData& data);

}  // namespace yukta::sysid

#endif  // YUKTA_SYSID_DRIFT_H_
