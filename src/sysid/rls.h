#ifndef YUKTA_SYSID_RLS_H_
#define YUKTA_SYSID_RLS_H_

/**
 * @file
 * Recursive least-squares (RLS) estimation of the MIMO ARX model used
 * by identifyArx, for online adaptation.
 *
 * The estimator shares ArxModel's structure and mean-centering
 * semantics exactly: the regressor is [lagged y, lagged u, intercept]
 * in identifyArx's column order, signals are centered on *fixed*
 * operating-point means and scaled by *fixed* per-channel standard
 * deviations taken from the shipped model's training data. Freezing
 * the centering keeps the update counter-keyed and deterministic: the
 * estimate after N samples depends only on those N samples, never on
 * running statistics that would couple it to restore boundaries.
 *
 * Exponential forgetting tracks slow plant drift; a covariance windup
 * guard (forgetting suspended in unexcited directions plus a trace
 * cap) keeps P bounded when the closed loop goes quiescent -- the
 * classic RLS failure mode where P grows geometrically under zero
 * excitation and the next sample causes a coefficient burst.
 */

#include <cstddef>
#include <deque>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"
#include "obs/stateio.h"
#include "sysid/arx.h"

namespace yukta::sysid {

/** Tuning for RlsEstimator. */
struct RlsOptions
{
    /** Exponential forgetting factor (1 = ordinary least squares). */
    double forgetting = 0.995;

    /** Initial covariance diagonal, in normalized regressor units. */
    double p0 = 100.0;

    /**
     * Windup guard: trace(P) is rescaled back to this cap whenever an
     * update pushes it above. Bounds P under arbitrary excitation.
     */
    double trace_cap = 1e7;

    /**
     * Windup guard: when the excitation phi' P phi of an update falls
     * below this, forgetting is suspended for that step (lambda_eff =
     * 1). This is the directional/regularized update: P only divides
     * by lambda in directions the data actually excites, so a
     * quiescent closed loop cannot inflate the covariance.
     */
    double min_excitation = 1e-6;
};

/**
 * Online MIMO ARX estimator. Warm-started from a shipped ArxModel so
 * the estimate begins at the offline fit and drifts only as evidence
 * accumulates.
 */
class RlsEstimator
{
  public:
    /**
     * @param seed shipped model providing structure (orders, lag0,
     *   ts), operating-point means, and the initial coefficient
     *   estimate.
     * @param u_scale, y_scale fixed per-channel normalization scales
     *   (typically the training-data standard deviations).
     */
    RlsEstimator(const ArxModel& seed, linalg::Vector u_scale,
                 linalg::Vector y_scale, const RlsOptions& options = {});

    /**
     * Feeds one sample (physical units). Until primed() the sample
     * only extends the lag history; afterwards each call performs one
     * RLS update.
     */
    void update(const linalg::Vector& u, const linalg::Vector& y);

    /** @return true once the lag history covers the model orders. */
    bool primed() const;

    /** @return number of RLS updates performed (post-priming). */
    std::size_t updates() const { return updates_; }

    /** Materializes the current estimate as an ArxModel. */
    ArxModel model() const;

    /** @return trace of the (normalized) covariance P. */
    double covarianceTrace() const { return p_.trace(); }

    /**
     * One-step prediction of the *next* sample's y by @p m (which must
     * share the seed's structure) from the internal lag history and
     * the next input @p u_now. Only valid when primed().
     */
    linalg::Vector predictWith(const ArxModel& m,
                               const linalg::Vector& u_now) const;

    /** Serializes the full estimator state (bit-exact). */
    void save(obs::StateWriter& w) const;

    /** Restores state written by save(). */
    void load(obs::StateReader& r);

  private:
    std::size_t na_ = 0;
    std::size_t nb_ = 0;
    std::size_t ny_ = 0;
    std::size_t nu_ = 0;
    std::size_t lag0_ = 1;
    double ts_ = 0.0;
    linalg::Vector u_mean_;
    linalg::Vector y_mean_;
    linalg::Vector u_scale_;
    linalg::Vector y_scale_;
    RlsOptions opt_;
    linalg::Matrix theta_;  ///< (ncoef + 1) x ny normalized coefficients.
    linalg::Matrix p_;      ///< (ncoef + 1) square covariance.
    std::deque<linalg::Vector> y_hist_;  ///< Front = y(t-1).
    std::deque<linalg::Vector> u_hist_;  ///< Front = u(t-1).
    std::size_t updates_ = 0;

    std::size_t numCols() const { return na_ * ny_ + nb_ * nu_ + 1; }
    linalg::Vector regressor(const linalg::Vector& u_now) const;
};

}  // namespace yukta::sysid

#endif  // YUKTA_SYSID_RLS_H_
