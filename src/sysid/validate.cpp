#include "sysid/validate.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "linalg/svd.h"

namespace yukta::sysid {

using linalg::Vector;

namespace {

/** One-step residuals of @p model over @p data (after the warmup). */
std::vector<Vector>
residuals(const ArxModel& model, const IoData& data)
{
    std::size_t lag0 = model.bLag0();
    std::size_t p =
        std::max(model.orderA(), model.orderB() + lag0 - 1);
    std::vector<Vector> out;
    for (std::size_t t = p; t < data.y.size(); ++t) {
        std::vector<Vector> yh(model.orderA());
        std::vector<Vector> uh(model.orderB());
        for (std::size_t k = 0; k < model.orderA(); ++k) {
            yh[k] = data.y[t - 1 - k];
        }
        for (std::size_t k = 0; k < model.orderB(); ++k) {
            uh[k] = data.u[t - lag0 - k];
        }
        out.push_back(data.y[t] - model.predict(yh, uh));
    }
    return out;
}

}  // namespace

OrderSelection
selectOrder(const IoData& data, double ts, std::size_t max_order,
            ArxOptions options)
{
    if (max_order < 1) {
        throw std::invalid_argument("selectOrder: max_order must be >= 1");
    }
    OrderSelection sel;
    double best = 1e300;
    std::size_t ny = data.y.empty() ? 0 : data.y[0].size();
    std::size_t nu = data.u.empty() ? 0 : data.u[0].size();

    for (std::size_t order = 1; order <= max_order; ++order) {
        options.na = order;
        options.nb = order;
        ArxModel model = identifyArx(data, ts, options);
        auto res = residuals(model, data);
        std::size_t n = res.size();
        if (n == 0) {
            continue;
        }
        // Pooled residual variance across channels.
        double sse = 0.0;
        for (const Vector& r : res) {
            for (std::size_t j = 0; j < r.size(); ++j) {
                sse += r[j] * r[j];
            }
        }
        double sigma2 = sse / static_cast<double>(n * ny);
        double params = static_cast<double>(order * ny * (ny + nu));
        double bic = static_cast<double>(n * ny) *
                         std::log(std::max(sigma2, 1e-300)) +
                     params * std::log(static_cast<double>(n * ny));
        sel.orders.push_back(order);
        sel.criterion.push_back(bic);
        if (bic < best) {
            best = bic;
            sel.best_order = order;
        }
    }
    return sel;
}

WhitenessResult
residualWhiteness(const ArxModel& model, const IoData& data,
                  std::size_t max_lag)
{
    auto res = residuals(model, data);
    std::size_t n = res.size();
    std::size_t ny = model.numOutputs();
    WhitenessResult out;
    out.max_autocorr.assign(ny, 0.0);
    if (n < max_lag + 2) {
        return out;
    }

    for (std::size_t j = 0; j < ny; ++j) {
        double mean = 0.0;
        for (const Vector& r : res) {
            mean += r[j];
        }
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (const Vector& r : res) {
            var += (r[j] - mean) * (r[j] - mean);
        }
        if (var < 1e-300) {
            continue;
        }
        for (std::size_t lag = 1; lag <= max_lag; ++lag) {
            double acc = 0.0;
            for (std::size_t t = lag; t < n; ++t) {
                acc += (res[t][j] - mean) * (res[t - lag][j] - mean);
            }
            out.max_autocorr[j] =
                std::max(out.max_autocorr[j], std::abs(acc / var));
        }
    }

    double band = 2.0 / std::sqrt(static_cast<double>(n));
    out.white = true;
    for (double a : out.max_autocorr) {
        if (a > band) {
            out.white = false;
        }
    }
    return out;
}

std::vector<double>
crossValidationFit(const IoData& data, double ts, const ArxOptions& options,
                   double train_fraction)
{
    if (train_fraction <= 0.0 || train_fraction >= 1.0) {
        throw std::invalid_argument("crossValidationFit: bad fraction");
    }
    std::size_t n = data.y.size();
    std::size_t split = static_cast<std::size_t>(
        train_fraction * static_cast<double>(n));
    if (split < 20 || n - split < 20) {
        throw std::invalid_argument("crossValidationFit: record too short");
    }
    IoData train;
    train.u.assign(data.u.begin(), data.u.begin() + split);
    train.y.assign(data.y.begin(), data.y.begin() + split);
    IoData test;
    test.u.assign(data.u.begin() + split, data.u.end());
    test.y.assign(data.y.begin() + split, data.y.end());

    ArxModel model = identifyArx(train, ts, options);
    return predictionFit(model, test);
}

FrequencyFit
frequencyResponseFit(const control::StateSpace& model,
                     const control::StateSpace& reference,
                     std::size_t grid_points)
{
    const bool same_clock =
        model.isDiscrete() == reference.isDiscrete() &&
        (!model.isDiscrete() || model.ts == reference.ts);
    if (!same_clock) {
        throw std::invalid_argument(
            "frequencyResponseFit: sample-time mismatch");
    }
    if (model.numInputs() != reference.numInputs() ||
        model.numOutputs() != reference.numOutputs()) {
        throw std::invalid_argument(
            "frequencyResponseFit: port dimension mismatch");
    }
    if (grid_points < 2) {
        throw std::invalid_argument(
            "frequencyResponseFit: need >= 2 grid points");
    }

    FrequencyFit out;
    double lo;
    double hi;
    if (model.isDiscrete()) {
        lo = 1e-4 / model.ts;
        hi = M_PI / model.ts;  // Nyquist cap
    } else {
        lo = 1e-3;
        hi = 1e3;
    }
    out.freqs = control::logSpacedFrequencies(lo, hi, grid_points);

    const std::vector<linalg::CMatrix> gm =
        model.freqResponseBatch(out.freqs);
    const std::vector<linalg::CMatrix> gr =
        reference.freqResponseBatch(out.freqs);

    double ref_scale = 0.0;
    for (const linalg::CMatrix& g : gr) {
        ref_scale = std::max(ref_scale, linalg::sigmaMax(g));
    }
    ref_scale = std::max(ref_scale, 1e-300);

    out.error.reserve(grid_points);
    for (std::size_t i = 0; i < grid_points; ++i) {
        const double e = linalg::sigmaMax(gm[i] - gr[i]) / ref_scale;
        out.error.push_back(e);
        out.worst = std::max(out.worst, e);
    }
    return out;
}

}  // namespace yukta::sysid
