#ifndef YUKTA_SYSID_VALIDATE_H_
#define YUKTA_SYSID_VALIDATE_H_

/**
 * @file
 * Model validation for the identification step of Fig. 3: model-order
 * selection by information criterion, residual whiteness testing, and
 * held-out cross-validation. "Each team develops a model ... and
 * validates it" (Sec. III-C).
 */

#include <cstddef>
#include <vector>

#include "control/state_space.h"
#include "sysid/arx.h"

namespace yukta::sysid {

/** Result of an order-selection sweep. */
struct OrderSelection
{
    std::size_t best_order = 1;     ///< Order minimizing the criterion.
    std::vector<double> criterion;  ///< BIC per candidate order.
    std::vector<std::size_t> orders;  ///< Candidate orders swept.
};

/**
 * Sweeps ARX orders (na = nb = order) and scores each fit with the
 * Bayesian information criterion over the one-step residuals.
 *
 * @param data identification record.
 * @param ts sample time.
 * @param max_order largest order to try (>= 1).
 * @param options base options (order fields are overridden).
 */
OrderSelection selectOrder(const IoData& data, double ts,
                           std::size_t max_order,
                           ArxOptions options = {});

/** Residual whiteness summary (Ljung-Box style). */
struct WhitenessResult
{
    /** Max |autocorrelation| over lags 1..L, per output channel. */
    std::vector<double> max_autocorr;

    /** True when every channel stays under the 2/sqrt(N) band. */
    bool white = false;
};

/**
 * Tests the one-step-ahead residuals of @p model on @p data for
 * whiteness up to @p max_lag.
 */
WhitenessResult residualWhiteness(const ArxModel& model, const IoData& data,
                                  std::size_t max_lag = 10);

/**
 * Splits the record at @p train_fraction, fits on the head, and
 * returns the one-step prediction fit (% per output) on the held-out
 * tail -- the honest generalization estimate.
 */
std::vector<double> crossValidationFit(const IoData& data, double ts,
                                       const ArxOptions& options,
                                       double train_fraction = 0.7);

/** Frequency-domain agreement between two LTI models. */
struct FrequencyFit
{
    std::vector<double> freqs;  ///< Evaluation grid (rad/s).
    std::vector<double> error;  ///< Relative error per grid point.
    double worst = 0.0;         ///< max over the grid of error[i].
};

/**
 * Compares @p model against @p reference across a log-spaced grid
 * (capped at the Nyquist rate for discrete systems) via the batched
 * frequency-response engine. error[i] is
 * sigma_max(Gm - Gr) / max_j sigma_max(Gr(w_j)), so a model that
 * tracks the reference everywhere scores near zero.
 *
 * @throws std::invalid_argument when the two systems disagree on
 *   sample time or port dimensions, or grid_points < 2.
 */
FrequencyFit frequencyResponseFit(const control::StateSpace& model,
                                  const control::StateSpace& reference,
                                  std::size_t grid_points = 64);

}  // namespace yukta::sysid

#endif  // YUKTA_SYSID_VALIDATE_H_
