#include "sysid/arx.h"

#include <cmath>
#include <stdexcept>

#include "linalg/qr.h"
#include "obs/profile.h"

namespace yukta::sysid {

using control::StateSpace;
using linalg::Matrix;
using linalg::Vector;

ArxModel::ArxModel(std::vector<Matrix> a_coeffs, std::vector<Matrix> b_coeffs,
                   Vector u_mean, Vector y_mean, double ts,
                   std::size_t b_lag0)
    : a_(std::move(a_coeffs)), b_(std::move(b_coeffs)),
      u_mean_(std::move(u_mean)), y_mean_(std::move(y_mean)), ts_(ts),
      b_lag0_(b_lag0)
{
    if (a_.empty() || b_.empty() || ts <= 0.0) {
        throw std::invalid_argument("ArxModel: empty orders or bad ts");
    }
    if (b_lag0_ > 1) {
        throw std::invalid_argument("ArxModel: b_lag0 must be 0 or 1");
    }
    std::size_t ny = a_[0].rows();
    std::size_t nu = b_[0].cols();
    for (const Matrix& m : a_) {
        if (m.rows() != ny || m.cols() != ny) {
            throw std::invalid_argument("ArxModel: inconsistent A blocks");
        }
    }
    for (const Matrix& m : b_) {
        if (m.rows() != ny || m.cols() != nu) {
            throw std::invalid_argument("ArxModel: inconsistent B blocks");
        }
    }
    if (y_mean_.size() != ny || u_mean_.size() != nu) {
        throw std::invalid_argument("ArxModel: mean size mismatch");
    }
}

std::size_t
ArxModel::numOutputs() const
{
    return a_.empty() ? 0 : a_[0].rows();
}

std::size_t
ArxModel::numInputs() const
{
    return b_.empty() ? 0 : b_[0].cols();
}

Vector
ArxModel::predict(const std::vector<Vector>& y_hist,
                  const std::vector<Vector>& u_hist) const
{
    if (y_hist.size() < a_.size() || u_hist.size() < b_.size()) {
        throw std::invalid_argument("ArxModel::predict: short history");
    }
    Vector y = Vector::zeros(numOutputs());
    for (std::size_t k = 0; k < a_.size(); ++k) {
        y += a_[k] * (y_hist[k] - y_mean_);
    }
    for (std::size_t k = 0; k < b_.size(); ++k) {
        y += b_[k] * (u_hist[k] - u_mean_);
    }
    if (!intercept_.empty()) {
        y += intercept_;
    }
    return y + y_mean_;
}

StateSpace
ArxModel::toStateSpace() const
{
    std::size_t ny = numOutputs();
    std::size_t nu = numInputs();
    std::size_t na = a_.size();
    std::size_t nb = b_.size();
    // Stored u lags: u(T-1) .. u(T-n_lag); with a direct term, B_0
    // becomes the feed-through D instead of a state.
    std::size_t n_lag = b_lag0_ == 0 ? nb - 1 : nb;
    std::size_t n = ny * na + nu * n_lag;

    // Output map: y(T) = [A1..Ana, B(lag1)..B(lagN)] x(T) + D u(T).
    Matrix c(ny, n);
    for (std::size_t k = 0; k < na; ++k) {
        c.setBlock(0, k * ny, a_[k]);
    }
    for (std::size_t k = 0; k < n_lag; ++k) {
        // Coefficient of u(T-1-k): index in b_ depends on b_lag0_.
        c.setBlock(0, na * ny + k * nu, b_[k + 1 - b_lag0_]);
    }
    Matrix d(ny, nu);
    if (b_lag0_ == 0) {
        d = b_[0];
    }

    Matrix a(n, n);
    // New y(T) goes to the top y slot.
    a.setBlock(0, 0, c);
    // Shift the y history down.
    for (std::size_t k = 1; k < na; ++k) {
        a.setBlock(k * ny, (k - 1) * ny, Matrix::identity(ny));
    }
    // Shift the u history down.
    for (std::size_t k = 1; k < n_lag; ++k) {
        a.setBlock(na * ny + k * nu, na * ny + (k - 1) * nu,
                   Matrix::identity(nu));
    }
    Matrix b(n, nu);
    // y(T) gets the feed-through contribution of u(T).
    b.setBlock(0, 0, d);
    if (n_lag > 0) {
        // The newest stored u slot is fed by the input.
        b.setBlock(na * ny, 0, Matrix::identity(nu));
    }
    return StateSpace(a, b, c, d, ts_);
}

ArxModel
identifyArx(const IoData& data, double ts, const ArxOptions& options)
{
    YUKTA_PROFILE_SCOPE("arx_fit");
    std::size_t nsamp = data.y.size();
    if (data.u.size() != nsamp) {
        throw std::invalid_argument("identifyArx: u/y length mismatch");
    }
    std::size_t p = std::max(options.na, options.nb);
    if (nsamp < p + 10) {
        throw std::invalid_argument("identifyArx: record too short");
    }
    std::size_t ny = data.y[0].size();
    std::size_t nu = data.u[0].size();
    if (ny == 0 || nu == 0) {
        throw std::invalid_argument("identifyArx: empty channels");
    }

    // Mean-center.
    Vector u_mean = Vector::zeros(nu);
    Vector y_mean = Vector::zeros(ny);
    for (std::size_t t = 0; t < nsamp; ++t) {
        u_mean += data.u[t];
        y_mean += data.y[t];
    }
    u_mean *= 1.0 / static_cast<double>(nsamp);
    y_mean *= 1.0 / static_cast<double>(nsamp);

    // Per-channel scales (unit standard deviation) for conditioning.
    Vector u_scale = Vector::ones(nu);
    Vector y_scale = Vector::ones(ny);
    if (options.normalize) {
        Vector u_var = Vector::zeros(nu);
        Vector y_var = Vector::zeros(ny);
        for (std::size_t t = 0; t < nsamp; ++t) {
            for (std::size_t j = 0; j < nu; ++j) {
                double d = data.u[t][j] - u_mean[j];
                u_var[j] += d * d;
            }
            for (std::size_t j = 0; j < ny; ++j) {
                double d = data.y[t][j] - y_mean[j];
                y_var[j] += d * d;
            }
        }
        // A channel whose std sits at the numerical floor is dead
        // (constant data). Normalizing by the floor used to amplify
        // the mean-subtraction round-off by ~1e9 and, worse, the
        // de-normalization below multiplied that channel's
        // coefficients back up by the same factor -- garbage in
        // physical units. Dead channels keep unit scale instead, so
        // the ridge pins their coefficients near zero (fail soft).
        constexpr double kDeadChannel = 1e-9;
        std::size_t live_u = 0;
        std::size_t live_y = 0;
        for (std::size_t j = 0; j < nu; ++j) {
            double sd = std::sqrt(u_var[j] / static_cast<double>(nsamp));
            u_scale[j] = sd > kDeadChannel ? sd : 1.0;
            live_u += sd > kDeadChannel ? 1 : 0;
        }
        for (std::size_t j = 0; j < ny; ++j) {
            double sd = std::sqrt(y_var[j] / static_cast<double>(nsamp));
            y_scale[j] = sd > kDeadChannel ? sd : 1.0;
            live_y += sd > kDeadChannel ? 1 : 0;
        }
        if (live_u == 0 || live_y == 0) {
            throw DegenerateExcitationError(
                live_u == 0 ? "identifyArx: all input channels constant"
                            : "identifyArx: all output channels constant");
        }
    }

    // Regression columns: lagged outputs, lagged inputs, intercept.
    std::size_t ncoef = options.na * ny + options.nb * nu;
    std::size_t ncols = ncoef + 1;
    std::size_t nrows = nsamp - p;
    // Regressor with ridge rows appended (intercept unpenalized).
    Matrix phi(nrows + ncoef, ncols);
    Matrix target(nrows + ncoef, ny);
    double ridge = std::sqrt(std::max(options.ridge, 0.0));
    for (std::size_t r = 0; r < nrows; ++r) {
        std::size_t t = p + r;
        std::size_t col = 0;
        for (std::size_t k = 1; k <= options.na; ++k) {
            for (std::size_t j = 0; j < ny; ++j) {
                phi(r, col++) = (data.y[t - k][j] - y_mean[j]) / y_scale[j];
            }
        }
        std::size_t lag0 = options.direct ? 0 : 1;
        for (std::size_t k = lag0; k < lag0 + options.nb; ++k) {
            for (std::size_t j = 0; j < nu; ++j) {
                phi(r, col++) = (data.u[t - k][j] - u_mean[j]) / u_scale[j];
            }
        }
        phi(r, col) = 1.0;
        for (std::size_t j = 0; j < ny; ++j) {
            target(r, j) = (data.y[t][j] - y_mean[j]) / y_scale[j];
        }
    }
    for (std::size_t i = 0; i < ncoef; ++i) {
        phi(nrows + i, i) = ridge;
    }

    Matrix theta = linalg::lstsq(phi, target);  // ncols x ny

    // Map normalized coefficients back to physical units:
    // A_k(i, j) *= y_scale[i] / y_scale[j], B_k(i, j) *= y_scale[i] /
    // u_scale[j], intercept *= y_scale[i].
    std::vector<Matrix> a_coeffs(options.na, Matrix(ny, ny));
    std::vector<Matrix> b_coeffs(options.nb, Matrix(ny, nu));
    std::size_t row = 0;
    for (std::size_t k = 0; k < options.na; ++k) {
        for (std::size_t j = 0; j < ny; ++j, ++row) {
            for (std::size_t i = 0; i < ny; ++i) {
                a_coeffs[k](i, j) = theta(row, i) * y_scale[i] / y_scale[j];
            }
        }
    }
    for (std::size_t k = 0; k < options.nb; ++k) {
        for (std::size_t j = 0; j < nu; ++j, ++row) {
            for (std::size_t i = 0; i < ny; ++i) {
                b_coeffs[k](i, j) = theta(row, i) * y_scale[i] / u_scale[j];
            }
        }
    }
    Vector intercept(ny);
    for (std::size_t i = 0; i < ny; ++i) {
        intercept[i] = theta(row, i) * y_scale[i];
    }
    ArxModel model(std::move(a_coeffs), std::move(b_coeffs), u_mean, y_mean,
                   ts, options.direct ? 0 : 1);
    model.setIntercept(std::move(intercept));
    return model;
}

namespace {

/** NRMSE fit in percent given truth and prediction series. */
std::vector<double>
nrmseFit(const std::vector<Vector>& truth, const std::vector<Vector>& pred,
         std::size_t skip)
{
    std::size_t ny = truth.empty() ? 0 : truth[0].size();
    std::size_t n = std::min(truth.size(), pred.size());
    std::vector<double> mean(ny, 0.0);
    std::size_t count = 0;
    for (std::size_t t = skip; t < n; ++t, ++count) {
        for (std::size_t j = 0; j < ny; ++j) {
            mean[j] += truth[t][j];
        }
    }
    std::vector<double> fit(ny, 0.0);
    if (count == 0) {
        return fit;
    }
    for (double& m : mean) {
        m /= static_cast<double>(count);
    }
    for (std::size_t j = 0; j < ny; ++j) {
        double err = 0.0;
        double dev = 0.0;
        for (std::size_t t = skip; t < n; ++t) {
            double e = truth[t][j] - pred[t][j];
            double d = truth[t][j] - mean[j];
            err += e * e;
            dev += d * d;
        }
        fit[j] = 100.0 * (1.0 - std::sqrt(err / std::max(dev, 1e-300)));
    }
    return fit;
}

}  // namespace

std::vector<double>
predictionFit(const ArxModel& model, const IoData& data)
{
    std::size_t lag0 = model.bLag0();
    std::size_t p = std::max(model.orderA(),
                             model.orderB() + lag0 - 1);
    std::vector<Vector> pred(data.y.size(),
                             Vector::zeros(model.numOutputs()));
    for (std::size_t t = p; t < data.y.size(); ++t) {
        std::vector<Vector> yh(model.orderA());
        std::vector<Vector> uh(model.orderB());
        for (std::size_t k = 0; k < model.orderA(); ++k) {
            yh[k] = data.y[t - 1 - k];
        }
        for (std::size_t k = 0; k < model.orderB(); ++k) {
            uh[k] = data.u[t - lag0 - k];
        }
        pred[t] = model.predict(yh, uh);
    }
    return nrmseFit(data.y, pred, p);
}

std::vector<double>
simulationFit(const ArxModel& model, const IoData& data)
{
    StateSpace ss = model.toStateSpace();
    Vector x = Vector::zeros(ss.numStates());
    std::vector<Vector> pred;
    pred.reserve(data.u.size());
    for (std::size_t t = 0; t < data.u.size(); ++t) {
        Vector u_c = data.u[t] - model.uMean();
        Vector y = stepOnce(ss, x, u_c);
        pred.push_back(y + model.yMean());
    }
    std::size_t p = std::max(model.orderA(), model.orderB());
    return nrmseFit(data.y, pred, p);
}

}  // namespace yukta::sysid
