#include "sysid/rls.h"

#include <cmath>
#include <stdexcept>

namespace yukta::sysid {

using linalg::Matrix;
using linalg::Vector;

namespace {

std::vector<double>
flatten(const Matrix& m)
{
    return std::vector<double>(m.data(), m.data() + m.rows() * m.cols());
}

Matrix
unflatten(const std::vector<double>& v, std::size_t rows, std::size_t cols)
{
    if (v.size() != rows * cols) {
        throw std::runtime_error("RlsEstimator: matrix size mismatch");
    }
    Matrix m(rows, cols);
    for (std::size_t i = 0; i < v.size(); ++i) {
        m.data()[i] = v[i];
    }
    return m;
}

std::vector<double>
flatten(const Vector& v)
{
    return v.raw();
}

}  // namespace

RlsEstimator::RlsEstimator(const ArxModel& seed, Vector u_scale,
                           Vector y_scale, const RlsOptions& options)
    : na_(seed.orderA()), nb_(seed.orderB()), ny_(seed.numOutputs()),
      nu_(seed.numInputs()), lag0_(seed.bLag0()), ts_(seed.sampleTime()),
      u_mean_(seed.uMean()), y_mean_(seed.yMean()),
      u_scale_(std::move(u_scale)), y_scale_(std::move(y_scale)),
      opt_(options)
{
    if (u_scale_.size() != nu_ || y_scale_.size() != ny_) {
        throw std::invalid_argument("RlsEstimator: scale size mismatch");
    }
    for (std::size_t j = 0; j < nu_; ++j) {
        if (!(u_scale_[j] > 0.0)) {
            throw std::invalid_argument("RlsEstimator: non-positive u scale");
        }
    }
    for (std::size_t j = 0; j < ny_; ++j) {
        if (!(y_scale_[j] > 0.0)) {
            throw std::invalid_argument("RlsEstimator: non-positive y scale");
        }
    }
    // Warm start: the seed's coefficients in normalized coordinates
    // (the exact inverse of identifyArx's de-normalization).
    std::size_t ncols = numCols();
    theta_ = Matrix(ncols, ny_);
    std::size_t row = 0;
    for (std::size_t k = 0; k < na_; ++k) {
        for (std::size_t j = 0; j < ny_; ++j, ++row) {
            for (std::size_t i = 0; i < ny_; ++i) {
                theta_(row, i) =
                    seed.aCoeff(k)(i, j) * y_scale_[j] / y_scale_[i];
            }
        }
    }
    for (std::size_t k = 0; k < nb_; ++k) {
        for (std::size_t j = 0; j < nu_; ++j, ++row) {
            for (std::size_t i = 0; i < ny_; ++i) {
                theta_(row, i) =
                    seed.bCoeff(k)(i, j) * u_scale_[j] / y_scale_[i];
            }
        }
    }
    if (!seed.intercept().empty()) {
        for (std::size_t i = 0; i < ny_; ++i) {
            theta_(row, i) = seed.intercept()[i] / y_scale_[i];
        }
    }
    p_ = Matrix::identity(ncols);
    p_ *= opt_.p0;
}

bool
RlsEstimator::primed() const
{
    std::size_t u_need = lag0_ == 0 ? (nb_ == 0 ? 0 : nb_ - 1) : nb_;
    return y_hist_.size() >= na_ && u_hist_.size() >= u_need;
}

Vector
RlsEstimator::regressor(const Vector& u_now) const
{
    Vector phi = Vector::zeros(numCols());
    std::size_t col = 0;
    for (std::size_t k = 1; k <= na_; ++k) {
        const Vector& yk = y_hist_[k - 1];
        for (std::size_t j = 0; j < ny_; ++j) {
            phi[col++] = (yk[j] - y_mean_[j]) / y_scale_[j];
        }
    }
    for (std::size_t k = lag0_; k < lag0_ + nb_; ++k) {
        const Vector& uk = k == 0 ? u_now : u_hist_[k - 1];
        for (std::size_t j = 0; j < nu_; ++j) {
            phi[col++] = (uk[j] - u_mean_[j]) / u_scale_[j];
        }
    }
    phi[col] = 1.0;
    return phi;
}

void
RlsEstimator::update(const Vector& u, const Vector& y)
{
    if (u.size() != nu_ || y.size() != ny_) {
        throw std::invalid_argument("RlsEstimator::update: size mismatch");
    }
    if (primed()) {
        Vector phi = regressor(u);
        Vector p_phi = p_ * phi;
        double excitation = phi.dot(p_phi);
        // Directional windup guard: only forget along excited
        // directions; a quiescent step leaves P untouched by 1/lambda.
        double lambda = excitation < opt_.min_excitation
                            ? 1.0
                            : opt_.forgetting;
        double denom = lambda + excitation;
        Vector gain = p_phi;
        gain *= 1.0 / denom;
        for (std::size_t i = 0; i < ny_; ++i) {
            double pred = 0.0;
            for (std::size_t c = 0; c < phi.size(); ++c) {
                pred += phi[c] * theta_(c, i);
            }
            double err = (y[i] - y_mean_[i]) / y_scale_[i] - pred;
            for (std::size_t c = 0; c < phi.size(); ++c) {
                theta_(c, i) += gain[c] * err;
            }
        }
        // P <- (P - gain * (P phi)') / lambda, then symmetrize to kill
        // round-off drift and cap the trace (second windup guard).
        for (std::size_t r = 0; r < p_.rows(); ++r) {
            for (std::size_t c = 0; c < p_.cols(); ++c) {
                p_(r, c) = (p_(r, c) - gain[r] * p_phi[c]) / lambda;
            }
        }
        for (std::size_t r = 0; r < p_.rows(); ++r) {
            for (std::size_t c = r + 1; c < p_.cols(); ++c) {
                double s = 0.5 * (p_(r, c) + p_(c, r));
                p_(r, c) = s;
                p_(c, r) = s;
            }
        }
        double tr = p_.trace();
        if (tr > opt_.trace_cap) {
            p_ *= opt_.trace_cap / tr;
        }
        ++updates_;
    }
    y_hist_.push_front(y);
    if (y_hist_.size() > na_) {
        y_hist_.pop_back();
    }
    u_hist_.push_front(u);
    std::size_t u_keep = lag0_ + nb_;  // Covers both lag conventions.
    if (u_hist_.size() > u_keep) {
        u_hist_.pop_back();
    }
}

ArxModel
RlsEstimator::model() const
{
    std::vector<Matrix> a_coeffs(na_, Matrix(ny_, ny_));
    std::vector<Matrix> b_coeffs(nb_, Matrix(ny_, nu_));
    std::size_t row = 0;
    for (std::size_t k = 0; k < na_; ++k) {
        for (std::size_t j = 0; j < ny_; ++j, ++row) {
            for (std::size_t i = 0; i < ny_; ++i) {
                a_coeffs[k](i, j) =
                    theta_(row, i) * y_scale_[i] / y_scale_[j];
            }
        }
    }
    for (std::size_t k = 0; k < nb_; ++k) {
        for (std::size_t j = 0; j < nu_; ++j, ++row) {
            for (std::size_t i = 0; i < ny_; ++i) {
                b_coeffs[k](i, j) =
                    theta_(row, i) * y_scale_[i] / u_scale_[j];
            }
        }
    }
    Vector intercept(ny_);
    for (std::size_t i = 0; i < ny_; ++i) {
        intercept[i] = theta_(row, i) * y_scale_[i];
    }
    ArxModel m(std::move(a_coeffs), std::move(b_coeffs), u_mean_, y_mean_,
               ts_, lag0_);
    m.setIntercept(std::move(intercept));
    return m;
}

Vector
RlsEstimator::predictWith(const ArxModel& m, const Vector& u_now) const
{
    if (!primed()) {
        throw std::logic_error("RlsEstimator::predictWith before primed");
    }
    std::vector<Vector> yh(na_);
    for (std::size_t k = 0; k < na_; ++k) {
        yh[k] = y_hist_[k];
    }
    std::vector<Vector> uh(nb_);
    for (std::size_t k = 0; k < nb_; ++k) {
        std::size_t lag = lag0_ + k;
        uh[k] = lag == 0 ? u_now : u_hist_[lag - 1];
    }
    return m.predict(yh, uh);
}

void
RlsEstimator::save(obs::StateWriter& w) const
{
    w.u64("rls.updates", updates_);
    w.f64vec("rls.theta", flatten(theta_));
    w.f64vec("rls.p", flatten(p_));
    w.u64("rls.ny_hist", y_hist_.size());
    for (const Vector& v : y_hist_) {
        w.f64vec("rls.yh", flatten(v));
    }
    w.u64("rls.nu_hist", u_hist_.size());
    for (const Vector& v : u_hist_) {
        w.f64vec("rls.uh", flatten(v));
    }
}

void
RlsEstimator::load(obs::StateReader& r)
{
    updates_ = r.u64("rls.updates");
    theta_ = unflatten(r.f64vec("rls.theta"), numCols(), ny_);
    p_ = unflatten(r.f64vec("rls.p"), numCols(), numCols());
    y_hist_.clear();
    std::size_t n = r.u64("rls.ny_hist");
    for (std::size_t i = 0; i < n; ++i) {
        y_hist_.push_back(Vector(r.f64vec("rls.yh")));
    }
    u_hist_.clear();
    n = r.u64("rls.nu_hist");
    for (std::size_t i = 0; i < n; ++i) {
        u_hist_.push_back(Vector(r.f64vec("rls.uh")));
    }
}

}  // namespace yukta::sysid
