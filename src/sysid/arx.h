#ifndef YUKTA_SYSID_ARX_H_
#define YUKTA_SYSID_ARX_H_

/**
 * @file
 * MIMO ARX identification by least squares:
 *
 *   y(T) = sum_{k=1..na} A_k y(T-k) + sum_{k=1..nb} B_k u(T-k) + e(T)
 *
 * The paper identifies a Box-Jenkins model of order 4 (outputs depend
 * on the 4 previous outputs and inputs); an order-4 ARX captures the
 * same deterministic structure, and using u(T-1..T-4) (rather than
 * u(T)) keeps the model strictly proper, matching a sampled controller
 * that actuates after measuring. Offsets (operating points) are
 * handled by mean-centering the data.
 */

#include <cstddef>
#include <stdexcept>
#include <string>
#include <vector>

#include "control/state_space.h"
#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace yukta::sysid {

/**
 * Thrown when an identification window carries no usable excitation
 * (every input -- or every output -- channel is constant), so any
 * least-squares fit would be pure regularization artifact. Callers
 * running online windows catch this and skip the window instead of
 * shipping garbage coefficients.
 */
class DegenerateExcitationError : public std::runtime_error
{
  public:
    /** @param what diagnostic naming the dead channel set. */
    explicit DegenerateExcitationError(const std::string& what)
        : std::runtime_error(what)
    {
    }
};

/** Input/output record from an identification experiment. */
struct IoData
{
    std::vector<linalg::Vector> u;  ///< Inputs per step.
    std::vector<linalg::Vector> y;  ///< Outputs per step.
};

/** An identified MIMO ARX model. */
class ArxModel
{
  public:
    ArxModel() = default;

    /**
     * Builds a model from explicit coefficient blocks.
     * @param a_coeffs A_1..A_na (each ny x ny).
     * @param b_coeffs B coefficients (each ny x nu); the first block
     *   corresponds to lag @p b_lag0.
     * @param u_mean, y_mean operating-point offsets.
     * @param b_lag0 0 when the model has a direct u(T) term (the
     *   paper's structure: y(T) depends on u(T)..u(T-3)); 1 for a
     *   strictly proper model.
     */
    ArxModel(std::vector<linalg::Matrix> a_coeffs,
             std::vector<linalg::Matrix> b_coeffs, linalg::Vector u_mean,
             linalg::Vector y_mean, double ts, std::size_t b_lag0 = 1);

    /** Model orders: number of A (output) and B (input) blocks. */
    std::size_t orderA() const { return a_.size(); }
    std::size_t orderB() const { return b_.size(); }

    /** First input lag: 0 = direct term present, 1 = strictly proper. */
    std::size_t bLag0() const { return b_lag0_; }
    std::size_t numOutputs() const;
    std::size_t numInputs() const;
    double sampleTime() const { return ts_; }

    /** Coefficient blocks and operating-point offsets (read-only). */
    const linalg::Matrix& aCoeff(std::size_t k) const { return a_[k]; }
    const linalg::Matrix& bCoeff(std::size_t k) const { return b_[k]; }
    const linalg::Vector& uMean() const { return u_mean_; }
    const linalg::Vector& yMean() const { return y_mean_; }

    /** Affine intercept of the centered regression (usually ~0). */
    const linalg::Vector& intercept() const { return intercept_; }

    /** Sets the intercept (estimated by identifyArx). */
    void setIntercept(linalg::Vector c) { intercept_ = std::move(c); }

    /**
     * One-step-ahead prediction of y(T) from histories
     * y(T-1..T-na) and u(T-bLag0()..) (element 0 = lag bLag0()).
     */
    linalg::Vector predict(const std::vector<linalg::Vector>& y_hist,
                           const std::vector<linalg::Vector>& u_hist) const;

    /**
     * Converts the (mean-centered) model to a discrete state-space
     * system in block companion form. Strictly proper when
     * bLag0() == 1; with a D = B_0 feed-through when bLag0() == 0.
     */
    control::StateSpace toStateSpace() const;

  private:
    std::vector<linalg::Matrix> a_;
    std::vector<linalg::Matrix> b_;
    linalg::Vector u_mean_;
    linalg::Vector y_mean_;
    linalg::Vector intercept_;  ///< Affine term (empty means zero).
    double ts_ = 0.0;
    std::size_t b_lag0_ = 1;    ///< First input lag (0 or 1).
};

/** Options for ARX identification. */
struct ArxOptions
{
    std::size_t na = 4;  ///< Output order (paper: 4).
    std::size_t nb = 4;  ///< Input order (paper: 4).
    double ridge = 1e-6; ///< Tikhonov regularization on the regressor.

    /**
     * Scale every channel to unit standard deviation before the
     * regression (coefficients are mapped back afterwards). Important
     * when channels span disparate magnitudes (e.g. 0.3 W little-
     * cluster power next to 80 C temperatures).
     */
    bool normalize = true;

    /**
     * Include the direct u(T) term, matching the paper's model
     * structure "inputs at times T, ... T-3" (Sec. IV-C). Without it,
     * a sampled plant that responds within the control period has its
     * response mis-attributed across lags. Default false to preserve
     * the classic strictly-proper ARX.
     */
    bool direct = false;
};

/**
 * Identifies an ARX model from data by (ridge-regularized) least
 * squares on mean-centered signals.
 *
 * @throws std::invalid_argument when the record is too short or
 *   inconsistent.
 */
ArxModel identifyArx(const IoData& data, double ts,
                     const ArxOptions& options = {});

/**
 * NRMSE fit in percent per output channel (100 = perfect,
 * 0 = no better than the mean), using one-step-ahead prediction.
 */
std::vector<double> predictionFit(const ArxModel& model, const IoData& data);

/**
 * NRMSE fit using free-run simulation of the model state space from
 * the recorded inputs (harder test than one-step prediction).
 */
std::vector<double> simulationFit(const ArxModel& model, const IoData& data);

}  // namespace yukta::sysid

#endif  // YUKTA_SYSID_ARX_H_
