#ifndef YUKTA_SYSID_EXCITATION_H_
#define YUKTA_SYSID_EXCITATION_H_

/**
 * @file
 * Excitation signal design for black-box system identification
 * (Sec. IV-C): the training runs set the would-be controller inputs
 * "in a variety of ways". We provide pseudo-random binary sequences
 * and multi-level random staircases over each input's allowed grid.
 */

#include <cstdint>
#include <vector>

#include "linalg/vector.h"

namespace yukta::sysid {

/**
 * Pseudo-random binary sequence (maximal-length LFSR based) toggling
 * between @p lo and @p hi.
 *
 * @param steps sequence length.
 * @param lo low level, @p hi high level.
 * @param hold samples to hold each chip (>= 1).
 * @param seed LFSR seed (nonzero).
 */
std::vector<double> prbs(std::size_t steps, double lo, double hi,
                         std::size_t hold = 1, std::uint32_t seed = 0xACE1u);

/**
 * Random staircase over a quantized range: every @p hold steps pick a
 * uniformly random level from {min, min+step, ..., max}.
 */
std::vector<double> randomStaircase(std::size_t steps, double min,
                                    double max, double step,
                                    std::size_t hold, std::uint32_t seed);

/**
 * Builds a multi-channel excitation: channel k is a random staircase
 * over [min[k], max[k]] with quantization step[k], using decorrelated
 * seeds and hold times.
 *
 * @return per-step input vectors (size steps).
 */
std::vector<linalg::Vector>
multiChannelExcitation(std::size_t steps, const std::vector<double>& min,
                       const std::vector<double>& max,
                       const std::vector<double>& step, std::size_t hold,
                       std::uint32_t seed);

}  // namespace yukta::sysid

#endif  // YUKTA_SYSID_EXCITATION_H_
