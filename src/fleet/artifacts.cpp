#include "fleet/artifacts.h"

#include "platform/config.h"

namespace yukta::fleet {

core::Artifacts
fleetArtifacts()
{
    core::ArtifactOptions opt;
    // Must stay identical to goldenArtifacts() in
    // tests/golden/scenario.h: same recipe, same cache entry.
    opt.cache_tag = "golden";
    opt.training.apps = {"swaptions", "milc"};
    opt.training.seconds_per_app = 60.0;
    opt.dk.max_iterations = 1;
    opt.dk.mu_grid = 12;
    opt.dk.bisection_steps = 8;
    return core::buildArtifacts(platform::BoardConfig::odroidXu3(), opt);
}

}  // namespace yukta::fleet
