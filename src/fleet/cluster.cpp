#include "fleet/cluster.h"

#include <algorithm>
#include <stdexcept>

namespace yukta::fleet {

ClusterController::ClusterController(ClusterConfig cfg,
                                     platform::BoardConfig board_cfg,
                                     int boards)
    : cfg_(cfg), board_cfg_(board_cfg), boards_(boards)
{
    if (boards_ <= 0) {
        throw std::invalid_argument("ClusterController: no boards");
    }
    if (cfg_.period_epochs < 1) {
        throw std::invalid_argument(
            "ClusterController: period_epochs must be >= 1");
    }
    if (cfg_.floor_fraction < 0.0 || cfg_.floor_fraction >= 1.0) {
        throw std::invalid_argument(
            "ClusterController: floor_fraction out of [0, 1)");
    }
}

bool
ClusterController::due(int epoch) const
{
    return cfg_.enabled && epoch % cfg_.period_epochs == 0;
}

std::vector<linalg::Vector>
ClusterController::computeTargets(
    const std::vector<BoardTelemetry>& telemetry) const
{
    if (telemetry.size() != static_cast<std::size_t>(boards_)) {
        throw std::invalid_argument(
            "ClusterController: telemetry size mismatch");
    }

    const double cap_w =
        board_cfg_.power_limit_big + board_cfg_.power_limit_little;
    const double budget =
        cfg_.power_budget_w > 0.0
            ? cfg_.power_budget_w
            : 0.7 * cap_w * static_cast<double>(boards_);

    // Demand = backlog plus smoothed offered load; a board with
    // neither gets the floor share.
    double total_demand = 0.0;
    std::vector<double> demand(telemetry.size(), 0.0);
    for (std::size_t b = 0; b < telemetry.size(); ++b) {
        demand[b] = std::max(
            0.0, telemetry[b].queued_gi + telemetry[b].arrival_gi_ema);
        total_demand += demand[b];
    }

    // Clamp ranges mirror makeHwOptimizer so held targets stay inside
    // the envelope the SSV controllers were designed for.
    const double big_lo = 0.3;
    const double big_hi = 0.93 * board_cfg_.power_limit_big;
    const double little_lo = 0.05;
    const double little_hi = 0.93 * board_cfg_.power_limit_little;
    const double floor_w = std::max(
        big_lo + little_lo, cfg_.floor_fraction * 0.93 * cap_w);
    const double big_ratio = board_cfg_.power_limit_big / cap_w;
    const double temp_target = board_cfg_.temp_limit - 9.0;

    std::vector<linalg::Vector> targets;
    targets.reserve(telemetry.size());
    for (std::size_t b = 0; b < telemetry.size(); ++b) {
        const double share =
            total_demand > 0.0
                ? demand[b] / total_demand
                : 1.0 / static_cast<double>(boards_);
        const double board_w =
            std::clamp(share * budget, floor_w, 0.93 * cap_w);
        const double p_big =
            std::clamp(board_w * big_ratio, big_lo, big_hi);
        const double p_little = std::clamp(
            board_w * (1.0 - big_ratio), little_lo, little_hi);
        // Fair share (share * boards == 1) keeps the default 3.0 BIPS
        // operating point; hot boards are pushed toward the ceiling,
        // idle boards throttled toward the floor.
        const double norm = share * static_cast<double>(boards_);
        const double bips = std::clamp(3.0 * norm, 0.5, 12.0);
        targets.push_back(
            linalg::Vector{bips, p_big, p_little, temp_target});
    }
    return targets;
}

}  // namespace yukta::fleet
