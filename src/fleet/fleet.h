#ifndef YUKTA_FLEET_FLEET_H_
#define YUKTA_FLEET_FLEET_H_

/**
 * @file
 * Sharded fleet simulator: N independent board instances (each the
 * full platform + multilayer controller + optional supervisor stack)
 * stepped in lockstep 500 ms epochs under an open-loop Poisson
 * request workload, a fleet-level admission layer, and a cluster
 * controller that redistributes per-board power/performance targets.
 *
 * Execution alternates two phases per epoch:
 *
 *   serial coordinator -- apply board-fault transitions (crashes and
 *     cold reboots), generate arrivals (counter-hashed), route them
 *     through admission, and (on due epochs) recompute and pin
 *     cluster targets; everything in board index order.
 *   parallel shards -- shared-nothing: each shard steps its boards
 *     one control period and drains their request queues at the rate
 *     of giga-instructions actually retired. No shared mutable state,
 *     no locks, no wall-clock reads.
 *
 * Because the coordinator is serial and deterministic, the shards are
 * shared-nothing, and rollups merge in board index order, the run
 * result is a pure function of the config: bit-identical for 1 vs N
 * pool workers (FleetMetrics::digest() makes that one integer
 * comparison).
 *
 * Fault tolerance. The config may carry a board-targeted FaultPlan
 * (board<i> targets: crash, degrade, hang -- see fault/plan.h).
 * Crashed boards go dark (their queue dropped or preserved per the
 * window's magnitude) and cold-reboot through the supervisor ladder
 * when the window ends. With fault_aware set, a watchdog guards the
 * shard phase: each shard attempt runs against a wall-clock deadline,
 * boards that did not step are retried with backoff, and a
 * persistently hung board is marked lost for the rest of its window
 * so admission and the cluster layer route around it. Fault-blind
 * runs keep routing work to dark boards and silently lose hung
 * epochs -- the baseline bench_fleet_faults compares against.
 * Whether a board stepped is decided from per-board stepped flags
 * written by the shards themselves, never from wall-clock task
 * outcomes, so faulted runs stay bit-identical for any worker count.
 *
 * Checkpoint/resume. saveCheckpoint() serializes the entire fleet --
 * every board's plant, controller, and supervisor state, request
 * queues, admission/cluster counters, and the fault-domain flags --
 * as a versioned, digest-stamped snapshot written atomically
 * (tmp+rename). restoreCheckpoint() verifies the stamp and the
 * config identity and resumes mid-run: run-to-T and
 * run-to-T/2 + restore + run-to-T produce bit-identical digests.
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "controllers/multilayer.h"
#include "core/adapt.h"
#include "core/schemes.h"
#include "fault/plan.h"
#include "fleet/admission.h"
#include "fleet/arrivals.h"
#include "fleet/cluster.h"
#include "obs/rollup.h"
#include "obs/stateio.h"
#include "platform/apps.h"

namespace yukta::fleet {

/**
 * @return the fleet's default online-adaptation options: a reduced
 * D-K recipe (1 iteration, coarse mu grid) so a drift-triggered
 * re-synthesis costs one background job, not an offline campaign.
 */
core::AdaptOptions defaultFleetAdaptOptions();

/** Per-board service workload knobs. */
struct ServiceConfig
{
    std::size_t threads = 8;      ///< Server threads per board.
    double ipc_big = 1.5;         ///< Per-thread IPC on a big core.
    double mem_boundness = 0.25;  ///< Memory-time fraction.
};

/** Everything that defines one fleet run. */
struct FleetConfig
{
    int boards = 16;

    /**
     * Shard count (boards are split into contiguous blocks). <= 0
     * derives one shard per board. The shard partition is part of the
     * run's identity; the worker count is not.
     */
    int shards = 0;

    std::uint32_t seed = 1;
    double sim_seconds = 60.0;
    core::Scheme scheme = core::Scheme::kYuktaFull;
    bool supervised = false;

    /** A queued request older than this is in SLO violation. */
    double slo_seconds = 2.0;

    ServiceConfig service;
    ArrivalConfig arrivals;
    AdmissionConfig admission;
    ClusterConfig cluster;

    /**
     * Board-fault schedule; every window must use a board<i> target
     * with an index inside the fleet (the constructor validates).
     */
    fault::FaultPlan faults;

    /**
     * True: watchdog-guarded shards, capacity-scaled admission, and
     * cluster targets skip dark boards. False: the fault-blind
     * baseline -- no watchdog, admission keeps filling dark boards,
     * hung epochs are silently lost.
     */
    bool fault_aware = true;

    /**
     * True: each shard ticks its boards' controller state machines
     * through one batched matrix-matrix pass per epoch (BatchRuntime)
     * instead of per-board matrix-vector passes. Bit-identical to the
     * scalar path, so this is an execution knob, not part of the
     * run's identity (excluded from canonical(); checkpoints
     * interoperate across modes).
     */
    bool batch_tick = true;

    /**
     * True (--adapt): every board runs the online adaptation loop on
     * its hardware layer -- RLS system identification alongside the
     * shipped controller, CUSUM drift detection against the shipped
     * model, drift-triggered re-synthesis on the shard pool, and
     * bumpless hot-swap of the refreshed controller. On the plant the
     * model was identified for, the CUSUM never fires and the run is
     * bit-identical to adapt=false, so -- like batch_tick -- this is
     * excluded from canonical(); checkpoints record per-board adapter
     * presence and restore refuses a mismatch.
     */
    bool adapt = false;

    /** Adaptation tuning (only read when adapt is set). */
    core::AdaptOptions adapt_options = defaultFleetAdaptOptions();

    /**
     * Shard attempts per epoch before a hung board is declared lost
     * (>= 1). Part of the run's identity; the wall-clock watchdog
     * deadline/backoff below are not (they only bound real time).
     */
    int watchdog_attempts = 2;

    double watchdog_timeout_s = 0.25;  ///< Wall deadline per attempt.
    double watchdog_backoff_s = 0.25;  ///< Added per retry attempt.

    /**
     * @return a normalized string over every identity-bearing field
     * (worker count and wall-clock watchdog knobs excluded).
     * Checkpoints embed it; restore refuses a mismatch.
     */
    std::string canonical() const;
};

/** One board plus its fleet-side bookkeeping. */
struct FleetBoard
{
    /** Adopts @p sys; all bookkeeping starts zeroed. */
    explicit FleetBoard(controllers::MultilayerSystem sys);

    controllers::MultilayerSystem system;

    /** Online adaptation loop (null unless FleetConfig::adapt). */
    std::unique_ptr<core::OnlineAdapter> adapter;

    std::deque<Request> queue;   ///< Oldest first.
    double queued_gi = 0.0;      ///< Sum of remaining demand.
    double last_instr = 0.0;     ///< Retired-GI mark (cumulative).
    double last_energy = 0.0;    ///< Energy mark (J, cumulative).

    // Telemetry the cluster layer reads (EMA alpha 0.3).
    double arrival_gi_ema = 0.0;
    double bips_ema = 0.0;
    double power_ema = 0.0;

    // Per-board outcome accumulators (merged in board order).
    obs::MergeableHistogram latency;
    obs::RunningStat epoch_bips;
    obs::RunningStat epoch_power;
    long long completed = 0;
    double served_gi = 0.0;
    double slo_violation_time = 0.0;

    // Fault-domain state.
    bool down = false;        ///< Inside a crash window (board dark).
    double lost_until = 0.0;  ///< Hung-lost until this sim time.
    long long reboots = 0;    ///< Cold reboots survived.

    // Plant accumulators carried across cold reboots (a fresh board
    // restarts its own counters at zero).
    double carried_energy = 0.0;
    double carried_violation = 0.0;
    double carried_emergency = 0.0;
};

/** Deterministic tally of fleet-level fault handling. */
struct FaultDomainStats
{
    long long crashes = 0;           ///< Crash windows entered.
    long long reboots = 0;           ///< Cold reboots completed.
    long long dropped_requests = 0;  ///< Requests lost to crashes.
    double dropped_gi = 0.0;         ///< Demand lost to crashes.
    long long lost_epochs = 0;       ///< Board-epochs lost to hangs.
    long long degraded_epochs = 0;   ///< Board-epochs at cut capacity.
    long long watchdog_timeouts = 0; ///< Hung-board attempts detected.
    long long shard_retries = 0;     ///< Watchdog retry rounds.

    /** @return canonical JSON object for these counters. */
    std::string toJson() const;

    /** Appends the counters to @p w (fleet checkpointing). */
    void save(obs::StateWriter& w) const;

    /** Restores counters written by save. */
    void load(obs::StateReader& r);
};

/**
 * Fleet-wide adaptation tally, summed over the boards' adapters.
 * Reported next to the wall-clock fields and -- deliberately -- kept
 * out of toJson(false)/digest(): a cache hit vs. a recomputed (but
 * bit-identical) synthesis may differ across worker counts and
 * checkpoint splits, while the simulated trajectory does not.
 */
struct AdaptStats
{
    long long drift_events = 0;  ///< CUSUM trips.
    long long syntheses = 0;     ///< Re-synthesis jobs run.
    long long cache_hits = 0;    ///< Jobs served from the design cache.
    long long swaps = 0;         ///< Hot-swaps installed.

    /** @return canonical JSON object for these counters. */
    std::string toJson() const;
};

/** Deterministic result of one fleet run. */
struct FleetMetrics
{
    int boards = 0;
    int epochs = 0;
    double sim_seconds = 0.0;

    AdmissionStats admission;
    int cluster_rounds = 0;
    long long completed = 0;
    double served_gi = 0.0;

    double energy = 0.0;           ///< Fleet joules.
    double exd = 0.0;              ///< Energy x sim time (J*s).
    double slo_violation_time = 0.0;      ///< Board-seconds past SLO.
    double constraint_violation_time = 0.0;  ///< True P/T cap breaches.
    double emergency_time = 0.0;   ///< Board-seconds of TMU caps.
    double backlog_gi = 0.0;       ///< Demand still queued at the end.

    FaultDomainStats faults;       ///< Fleet-level fault handling.

    obs::MergeableHistogram latency;  ///< Completed-request latency.
    obs::RunningStat board_bips;      ///< Per-board-epoch BIPS.
    obs::RunningStat board_power;     ///< Per-board-epoch power (W).

    // Wall-clock throughput; never part of the digest.
    double wall_seconds = 0.0;
    double board_ticks_per_sec = 0.0;

    // Adaptation tally; reported with the wall fields, never part of
    // the digest (see AdaptStats).
    AdaptStats adapt;

    /**
     * @return the run result as canonical JSON. @p include_wall adds
     * the wall-clock fields; digests always exclude them.
     */
    std::string toJson(bool include_wall) const;

    /** FNV-1a over toJson(false): the run's determinism fingerprint. */
    std::uint64_t digest() const;
};

/** Periodic-checkpoint knobs for FleetSim::run. */
struct CheckpointConfig
{
    /** Write a checkpoint every this many epochs; <= 0 disables. */
    int every_epochs = 0;

    /**
     * Directory receiving fleet-<epoch>.ckpt plus a fleet-latest.ckpt
     * alias (both written atomically). Must exist and be non-empty
     * when every_epochs > 0.
     */
    std::string dir;
};

/**
 * The fleet simulator. Construct once; run() simulates forward from
 * the current epoch (0 for a fresh instance, the checkpointed epoch
 * after restoreCheckpoint), so a restored run continues mid-flight.
 */
class FleetSim
{
  public:
    /**
     * Builds @p cfg.boards board instances from @p artifacts. Board b
     * gets a counter-hashed seed derived from (cfg.seed, b), so the
     * fleet's sensor-noise streams are decorrelated but reproducible.
     * @throws std::invalid_argument on bad knobs or a fault plan with
     * non-board targets / board indices outside the fleet.
     */
    FleetSim(FleetConfig cfg, const core::Artifacts& artifacts);

    /**
     * Runs the fleet from the current epoch to cfg.sim_seconds of
     * simulated time on @p workers pool workers (0/1 = inline),
     * optionally dropping periodic checkpoints per @p ckpt. The
     * result is bit-identical for any worker count, with or without
     * scheduled faults, and across checkpoint/restore splits.
     */
    FleetMetrics run(std::size_t workers,
                     const CheckpointConfig& ckpt = {});

    /**
     * Serializes the full fleet state to @p path: a versioned header
     * (format version, FleetConfig::canonical(), epoch), every
     * subsystem's StateWriter snapshot, and a trailing FNV-1a digest
     * stamp, written atomically via tmp+rename.
     * @throws std::runtime_error when the file cannot be written.
     */
    void saveCheckpoint(const std::string& path) const;

    /**
     * Restores state written by saveCheckpoint. The snapshot must
     * carry a matching format version and an identical
     * FleetConfig::canonical() (same artifacts assumed); the digest
     * stamp must verify. run() then resumes from the saved epoch.
     * @throws std::runtime_error on read failure, digest mismatch,
     * version/config mismatch, or malformed state.
     */
    void restoreCheckpoint(const std::string& path);

    /** Next epoch run() will execute (0 fresh, N after restore). */
    int epoch() const { return epoch_; }

    /** Board access (tests inspect queues and targets). */
    FleetBoard& board(int b) { return *boards_[static_cast<std::size_t>(b)]; }
    int boardCount() const { return static_cast<int>(boards_.size()); }

    /** @return the validated configuration. */
    const FleetConfig& config() const { return cfg_; }

  private:
    FleetConfig cfg_;
    core::Artifacts artifacts_;      ///< Kept for cold reboots.
    platform::AppModel service_app_; ///< Kept for cold reboots.
    std::vector<std::unique_ptr<FleetBoard>> boards_;
    ArrivalGenerator arrivals_;
    AdmissionController admission_;
    ClusterController cluster_;
    bool cluster_supported_ = true;
    int epoch_ = 0;  ///< Next epoch to execute.

    // Per-crash-window transition flags (board went dark / rebooted).
    std::vector<char> crash_entered_;
    std::vector<char> crash_exited_;
    FaultDomainStats fault_stats_;

    /** @return the counter-hashed base seed for board @p b. */
    std::uint32_t boardSeed(int b) const;

    /** Applies crash entries and cold reboots due at @p t0. */
    void applyCrashTransitions(int epoch, double t0);

    /** Applies the plant-drift windows in force at @p t0 (serial;
        an exact no-op when the plan schedules no drift). */
    void applyDriftWindows(double t0);

    /**
     * The serial adaptation coordinator, after the shard phase: runs
     * due re-synthesis jobs on @p workers pool workers (board index
     * order, retried per the runner policy) and installs due hot-swaps
     * through the bumpless-transfer path.
     */
    void stepAdaptation(std::size_t workers, double t0);

    /** Rebuilds board @p b fresh through the supervisor ladder. */
    void rebootBoard(int b, int epoch, double t0);

    /** Remaining drain capacity fraction for board @p b at @p t0. */
    double drainScale(int b, double t0) const;

    /**
     * True when board @p b's shard worker stalls at @p t0 on attempt
     * @p attempt (negative = fault-blind: any active hang stalls).
     */
    bool hangBlocks(int b, double t0, int attempt) const;

    /** @return true when any hang window is active at @p t0. */
    bool anyHangActive(double t0) const;

    /** Per-board admission capacity scale at @p t0 (aware mode). */
    std::vector<double> capacityScale(double t0) const;

    /** Steps one board one control period and drains its queue. */
    void stepBoard(FleetBoard& fb, double epoch_end,
                   double drain_scale) const;

    /**
     * Post-tick half of stepBoard: EMA/rollup bookkeeping and queue
     * drain at the rate of work actually retired this period.
     */
    void drainBoard(FleetBoard& fb, double epoch_end,
                    double drain_scale) const;
};

}  // namespace yukta::fleet

#endif  // YUKTA_FLEET_FLEET_H_
