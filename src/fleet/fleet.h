#ifndef YUKTA_FLEET_FLEET_H_
#define YUKTA_FLEET_FLEET_H_

/**
 * @file
 * Sharded fleet simulator: N independent board instances (each the
 * full platform + multilayer controller + optional supervisor stack)
 * stepped in lockstep 500 ms epochs under an open-loop Poisson
 * request workload, a fleet-level admission layer, and a cluster
 * controller that redistributes per-board power/performance targets.
 *
 * Execution alternates two phases per epoch:
 *
 *   serial coordinator -- generate arrivals (counter-hashed), route
 *     them through admission, and (on due epochs) recompute and pin
 *     cluster targets; everything in board index order.
 *   parallel shards -- shared-nothing: each shard steps its boards
 *     one control period and drains their request queues at the rate
 *     of giga-instructions actually retired. No shared mutable state,
 *     no locks, no wall-clock reads.
 *
 * Because the coordinator is serial and deterministic, the shards are
 * shared-nothing, and rollups merge in board index order, the run
 * result is a pure function of the config: bit-identical for 1 vs N
 * pool workers (FleetMetrics::digest() makes that one integer
 * comparison).
 */

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "controllers/multilayer.h"
#include "core/schemes.h"
#include "fleet/admission.h"
#include "fleet/arrivals.h"
#include "fleet/cluster.h"
#include "obs/rollup.h"

namespace yukta::fleet {

/** Per-board service workload knobs. */
struct ServiceConfig
{
    std::size_t threads = 8;      ///< Server threads per board.
    double ipc_big = 1.5;         ///< Per-thread IPC on a big core.
    double mem_boundness = 0.25;  ///< Memory-time fraction.
};

/** Everything that defines one fleet run. */
struct FleetConfig
{
    int boards = 16;

    /**
     * Shard count (boards are split into contiguous blocks). <= 0
     * derives one shard per board. The shard partition is part of the
     * run's identity; the worker count is not.
     */
    int shards = 0;

    std::uint32_t seed = 1;
    double sim_seconds = 60.0;
    core::Scheme scheme = core::Scheme::kYuktaFull;
    bool supervised = false;

    /** A queued request older than this is in SLO violation. */
    double slo_seconds = 2.0;

    ServiceConfig service;
    ArrivalConfig arrivals;
    AdmissionConfig admission;
    ClusterConfig cluster;
};

/** One board plus its fleet-side bookkeeping. */
struct FleetBoard
{
    /** Adopts @p sys; all bookkeeping starts zeroed. */
    explicit FleetBoard(controllers::MultilayerSystem sys);

    controllers::MultilayerSystem system;
    std::deque<Request> queue;   ///< Oldest first.
    double queued_gi = 0.0;      ///< Sum of remaining demand.
    double last_instr = 0.0;     ///< Retired-GI mark (cumulative).
    double last_energy = 0.0;    ///< Energy mark (J, cumulative).

    // Telemetry the cluster layer reads (EMA alpha 0.3).
    double arrival_gi_ema = 0.0;
    double bips_ema = 0.0;
    double power_ema = 0.0;

    // Per-board outcome accumulators (merged in board order).
    obs::MergeableHistogram latency;
    obs::RunningStat epoch_bips;
    obs::RunningStat epoch_power;
    long long completed = 0;
    double served_gi = 0.0;
    double slo_violation_time = 0.0;
};

/** Deterministic result of one fleet run. */
struct FleetMetrics
{
    int boards = 0;
    int epochs = 0;
    double sim_seconds = 0.0;

    AdmissionStats admission;
    int cluster_rounds = 0;
    long long completed = 0;
    double served_gi = 0.0;

    double energy = 0.0;           ///< Fleet joules.
    double exd = 0.0;              ///< Energy x sim time (J*s).
    double slo_violation_time = 0.0;      ///< Board-seconds past SLO.
    double constraint_violation_time = 0.0;  ///< True P/T cap breaches.
    double emergency_time = 0.0;   ///< Board-seconds of TMU caps.
    double backlog_gi = 0.0;       ///< Demand still queued at the end.

    obs::MergeableHistogram latency;  ///< Completed-request latency.
    obs::RunningStat board_bips;      ///< Per-board-epoch BIPS.
    obs::RunningStat board_power;     ///< Per-board-epoch power (W).

    // Wall-clock throughput; never part of the digest.
    double wall_seconds = 0.0;
    double board_ticks_per_sec = 0.0;

    /**
     * @return the run result as canonical JSON. @p include_wall adds
     * the wall-clock fields; digests always exclude them.
     */
    std::string toJson(bool include_wall) const;

    /** FNV-1a over toJson(false): the run's determinism fingerprint. */
    std::uint64_t digest() const;
};

/** The fleet simulator. Construct once, run once. */
class FleetSim
{
  public:
    /**
     * Builds @p cfg.boards board instances from @p artifacts. Board b
     * gets a counter-hashed seed derived from (cfg.seed, b), so the
     * fleet's sensor-noise streams are decorrelated but reproducible.
     */
    FleetSim(FleetConfig cfg, const core::Artifacts& artifacts);

    /**
     * Runs the whole fleet for cfg.sim_seconds of simulated time on
     * @p workers pool workers (0/1 = inline). The result is
     * bit-identical for any worker count.
     */
    FleetMetrics run(std::size_t workers);

    /** Board access (tests inspect queues and targets). */
    FleetBoard& board(int b) { return *boards_[static_cast<std::size_t>(b)]; }
    int boardCount() const { return static_cast<int>(boards_.size()); }

    /** @return the validated configuration. */
    const FleetConfig& config() const { return cfg_; }

  private:
    FleetConfig cfg_;
    std::vector<std::unique_ptr<FleetBoard>> boards_;
    ArrivalGenerator arrivals_;
    AdmissionController admission_;
    ClusterController cluster_;
    bool cluster_supported_ = true;

    /** Steps one board one control period and drains its queue. */
    void stepBoard(FleetBoard& fb, double epoch_end) const;
};

}  // namespace yukta::fleet

#endif  // YUKTA_FLEET_FLEET_H_
