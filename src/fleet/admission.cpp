#include "fleet/admission.h"

#include <sstream>
#include <stdexcept>

#include "obs/trace.h"

namespace yukta::fleet {

std::string
AdmissionStats::toJson() const
{
    std::ostringstream os;
    os << "{\"offered\":" << offered << ",\"accepted\":" << accepted
       << ",\"rejected\":" << rejected << ",\"rerouted\":" << rerouted
       << ",\"offered_gi\":" << obs::canonicalNumber(offered_gi)
       << ",\"accepted_gi\":" << obs::canonicalNumber(accepted_gi)
       << ",\"rejected_gi\":" << obs::canonicalNumber(rejected_gi) << "}";
    return os.str();
}

void
AdmissionStats::save(obs::StateWriter& w) const
{
    w.i64("adm.offered", offered);
    w.i64("adm.accepted", accepted);
    w.i64("adm.rejected", rejected);
    w.i64("adm.rerouted", rerouted);
    w.f64("adm.offered_gi", offered_gi);
    w.f64("adm.accepted_gi", accepted_gi);
    w.f64("adm.rejected_gi", rejected_gi);
}

void
AdmissionStats::load(obs::StateReader& r)
{
    offered = r.i64("adm.offered");
    accepted = r.i64("adm.accepted");
    rejected = r.i64("adm.rejected");
    rerouted = r.i64("adm.rerouted");
    offered_gi = r.f64("adm.offered_gi");
    accepted_gi = r.f64("adm.accepted_gi");
    rejected_gi = r.f64("adm.rejected_gi");
}

AdmissionController::AdmissionController(AdmissionConfig cfg, int boards)
    : cfg_(cfg), boards_(boards)
{
    if (boards_ <= 0) {
        throw std::invalid_argument("AdmissionController: no boards");
    }
    if (cfg_.enabled && !(cfg_.queue_capacity_gi > 0.0)) {
        throw std::invalid_argument(
            "AdmissionController: capacity must be positive");
    }
    if (cfg_.max_hops < 0) {
        throw std::invalid_argument(
            "AdmissionController: negative max_hops");
    }
}

int
AdmissionController::route(const Request& r,
                           std::vector<double>& queued_gi,
                           const std::vector<double>* capacity_scale)
{
    ++stats_.offered;
    stats_.offered_gi += r.demand_gi;

    if (!cfg_.enabled) {
        queued_gi[static_cast<std::size_t>(r.origin)] += r.demand_gi;
        ++stats_.accepted;
        stats_.accepted_gi += r.demand_gi;
        return r.origin;
    }

    const int hops = std::min(cfg_.max_hops, boards_ - 1);
    for (int h = 0; h <= hops; ++h) {
        const int b = (r.origin + h) % boards_;
        const double scale =
            capacity_scale == nullptr
                ? 1.0
                : (*capacity_scale)[static_cast<std::size_t>(b)];
        if (!(scale > 0.0)) {
            continue;  // Dark board: the ring routes around it.
        }
        double& depth = queued_gi[static_cast<std::size_t>(b)];
        if (depth + r.demand_gi <= cfg_.queue_capacity_gi * scale) {
            depth += r.demand_gi;
            ++stats_.accepted;
            stats_.accepted_gi += r.demand_gi;
            if (h > 0) {
                ++stats_.rerouted;
            }
            return b;
        }
    }
    ++stats_.rejected;
    stats_.rejected_gi += r.demand_gi;
    return -1;
}

}  // namespace yukta::fleet
