#include "fleet/admission.h"

#include <sstream>
#include <stdexcept>

#include "obs/trace.h"

namespace yukta::fleet {

std::string
AdmissionStats::toJson() const
{
    std::ostringstream os;
    os << "{\"offered\":" << offered << ",\"accepted\":" << accepted
       << ",\"rejected\":" << rejected << ",\"rerouted\":" << rerouted
       << ",\"offered_gi\":" << obs::canonicalNumber(offered_gi)
       << ",\"accepted_gi\":" << obs::canonicalNumber(accepted_gi)
       << ",\"rejected_gi\":" << obs::canonicalNumber(rejected_gi) << "}";
    return os.str();
}

AdmissionController::AdmissionController(AdmissionConfig cfg, int boards)
    : cfg_(cfg), boards_(boards)
{
    if (boards_ <= 0) {
        throw std::invalid_argument("AdmissionController: no boards");
    }
    if (cfg_.enabled && !(cfg_.queue_capacity_gi > 0.0)) {
        throw std::invalid_argument(
            "AdmissionController: capacity must be positive");
    }
    if (cfg_.max_hops < 0) {
        throw std::invalid_argument(
            "AdmissionController: negative max_hops");
    }
}

int
AdmissionController::route(const Request& r,
                           std::vector<double>& queued_gi)
{
    ++stats_.offered;
    stats_.offered_gi += r.demand_gi;

    if (!cfg_.enabled) {
        queued_gi[static_cast<std::size_t>(r.origin)] += r.demand_gi;
        ++stats_.accepted;
        stats_.accepted_gi += r.demand_gi;
        return r.origin;
    }

    const int hops = std::min(cfg_.max_hops, boards_ - 1);
    for (int h = 0; h <= hops; ++h) {
        const int b = (r.origin + h) % boards_;
        double& depth = queued_gi[static_cast<std::size_t>(b)];
        if (depth + r.demand_gi <= cfg_.queue_capacity_gi) {
            depth += r.demand_gi;
            ++stats_.accepted;
            stats_.accepted_gi += r.demand_gi;
            if (h > 0) {
                ++stats_.rerouted;
            }
            return b;
        }
    }
    ++stats_.rejected;
    stats_.rejected_gi += r.demand_gi;
    return -1;
}

}  // namespace yukta::fleet
