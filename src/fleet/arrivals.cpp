#include "fleet/arrivals.h"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace yukta::fleet {

namespace {

constexpr double kTwoPi = 6.283185307179586476925286766559;

/** Combines counter components into one mixer key. */
std::uint64_t
key(std::uint64_t seed, std::uint64_t board, std::uint64_t epoch,
    std::uint64_t stream, std::uint64_t draw)
{
    // Each component lands in its own avalanche round, so adjacent
    // (board, epoch, draw) tuples decorrelate fully.
    std::uint64_t k = mix64(seed + 0x9e3779b97f4a7c15ull);
    k = mix64(k ^ (board * 0xbf58476d1ce4e5b9ull));
    k = mix64(k ^ (epoch * 0x94d049bb133111ebull));
    k = mix64(k ^ (stream * 0xd6e8feb86659fd93ull));
    return k ^ (draw * 0xa0761d6478bd642full);
}

}  // namespace

std::uint64_t
mix64(std::uint64_t key)
{
    key += 0x9e3779b97f4a7c15ull;
    key = (key ^ (key >> 30)) * 0xbf58476d1ce4e5b9ull;
    key = (key ^ (key >> 27)) * 0x94d049bb133111ebull;
    return key ^ (key >> 31);
}

double
mixUnit(std::uint64_t key)
{
    // 53 high bits -> (0, 1); +0.5 keeps the draw strictly positive
    // so log() in the exponential sampler is always finite.
    const std::uint64_t bits = mix64(key) >> 11;
    return (static_cast<double>(bits) + 0.5) / 9007199254740992.0;
}

double
DiurnalProfile::rateAt(double t) const
{
    const double swing =
        amplitude * std::sin(kTwoPi * t / period_seconds + phase);
    return base_rate * (1.0 + swing);
}

ArrivalGenerator::ArrivalGenerator(ArrivalConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), seed_(seed)
{
    if (!(cfg_.profile.base_rate >= 0.0) ||
        !(cfg_.profile.period_seconds > 0.0) ||
        cfg_.profile.amplitude < 0.0 || cfg_.profile.amplitude >= 1.0) {
        throw std::invalid_argument("ArrivalGenerator: bad profile");
    }
    if (!(cfg_.mean_demand_gi > 0.0)) {
        throw std::invalid_argument(
            "ArrivalGenerator: mean_demand_gi must be positive");
    }
}

double
ArrivalGenerator::boardWeight(int board) const
{
    const auto i = static_cast<std::size_t>(board);
    return i < cfg_.board_weight.size() ? cfg_.board_weight[i] : 1.0;
}

std::vector<Request>
ArrivalGenerator::epochArrivals(int board, int epoch, double t0,
                                double dt) const
{
    const double lambda =
        cfg_.profile.rateAt(t0) * boardWeight(board) * dt;
    std::vector<Request> out;
    if (!(lambda > 0.0)) {
        return out;
    }

    const auto b = static_cast<std::uint64_t>(board);
    const auto e = static_cast<std::uint64_t>(epoch);

    // Knuth's Poisson sampler over counter-hashed uniforms (stream 0).
    const double floor_p = std::exp(-lambda);
    int n = 0;
    double p = 1.0;
    const int cap = static_cast<int>(10.0 * lambda) + 64;
    while (n < cap) {
        p *= mixUnit(key(seed_, b, e, 0, static_cast<std::uint64_t>(n)));
        if (p <= floor_p) {
            break;
        }
        ++n;
    }

    out.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        const auto d = static_cast<std::uint64_t>(i);
        Request r;
        // Uniform arrival offsets (stream 1) sorted implicitly by
        // draw index is NOT required: order within an epoch only
        // affects queue order, and using draw order keeps the stream
        // independent of any sort tie-breaking.
        r.arrival_time = t0 + dt * mixUnit(key(seed_, b, e, 1, d));
        r.demand_gi = -cfg_.mean_demand_gi *
                      std::log(mixUnit(key(seed_, b, e, 2, d)));
        r.remaining_gi = r.demand_gi;
        r.origin = board;
        out.push_back(r);
    }
    return out;
}

}  // namespace yukta::fleet
