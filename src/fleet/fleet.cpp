#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "controllers/batch_runtime.h"
#include "core/cache.h"
#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "runner/pool.h"

namespace yukta::fleet {

using controllers::kControlPeriod;

namespace {

/** EMA smoothing for the cluster-layer telemetry streams. */
constexpr double kEmaAlpha = 0.3;

/** Capacity fraction a degrade window cuts to when magnitude is 0. */
constexpr double kDefaultDegradeScale = 0.5;

/** True-power multiplier a drift window applies when magnitude is 0. */
constexpr double kDefaultDriftScale = 1.8;

/** Bump when the checkpoint layout changes incompatibly.
    v2: per-board online-adaptation state + board drift fields. */
constexpr std::uint64_t kCheckpointVersion = 2;

/** All boards share these latency bucket bounds so rollups merge. */
obs::MergeableHistogram
latencyHistogram()
{
    // 10 ms .. 1000 s, 9 buckets per decade: resolves sub-period
    // latencies and multi-minute pathological backlogs alike.
    return obs::MergeableHistogram::logSpaced(0.01, 1000.0, 9);
}

/** @return @p v as the 16-hex-digit digest stamp format. */
std::string
hex64(std::uint64_t v)
{
    char buf[17];
    std::snprintf(buf, sizeof buf, "%016llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

}  // namespace

core::AdaptOptions
defaultFleetAdaptOptions()
{
    core::AdaptOptions opt;
    // Reduced synthesis recipe: one D-K pass over a coarse mu grid.
    // An online re-synthesis must cost a background job, not the
    // offline campaign's full budget.
    opt.dk.max_iterations = 1;
    opt.dk.mu_grid = 12;
    opt.dk.bisection_steps = 8;
    // Closed-loop drift detection: the controller actively rejects a
    // plant shift, so the shipped model's prediction error shows up as
    // repeated multi-sigma bursts rather than a sustained offset, and
    // some channels run several training-sigma hot with no drift at
    // all. The calibration window (below) rescales each channel to its
    // measured closed-loop level, after which slack/threshold work in
    // honest units: nominal statistic peaks < 9 over 10 minutes while
    // a >=1.8x power shift crosses 20 within seconds to ~35 s.
    opt.cusum.slack_sigma = 2.5;
    opt.cusum.threshold = 20.0;
    // Boards start from an idle state far from the training operating
    // point; the first ~15 s of prediction error is startup transient,
    // not drift, so arm the detector only after it has died out, then
    // spend 30 s measuring the nominal closed-loop error level.
    opt.warmup_ticks = 40;
    opt.calibration_ticks = 60;
    // Give the RLS a full minute on the drifted plant before the
    // model is snapshotted: the re-synthesized controller is only as
    // good as the snapshot, and the closed loop explores the drifted
    // dynamics slowly.
    opt.settle_ticks = 120;
    return opt;
}

std::string
FleetConfig::canonical() const
{
    std::ostringstream os;
    os << "fleet_v2;boards=" << boards << ";shards=" << shards
       << ";seed=" << seed
       << ";sim=" << obs::canonicalNumber(sim_seconds)
       << ";scheme=" << static_cast<int>(scheme)
       << ";sup=" << (supervised ? 1 : 0)
       << ";slo=" << obs::canonicalNumber(slo_seconds)
       << ";svc=" << service.threads << ","
       << obs::canonicalNumber(service.ipc_big) << ","
       << obs::canonicalNumber(service.mem_boundness)
       << ";arr=" << obs::canonicalNumber(arrivals.profile.base_rate)
       << "," << obs::canonicalNumber(arrivals.profile.amplitude) << ","
       << obs::canonicalNumber(arrivals.profile.period_seconds) << ","
       << obs::canonicalNumber(arrivals.profile.phase) << ","
       << obs::canonicalNumber(arrivals.mean_demand_gi);
    for (double w : arrivals.board_weight) {
        os << "," << obs::canonicalNumber(w);
    }
    os << ";adm=" << (admission.enabled ? 1 : 0) << ","
       << obs::canonicalNumber(admission.queue_capacity_gi) << ","
       << admission.max_hops
       << ";clu=" << (cluster.enabled ? 1 : 0) << ","
       << cluster.period_epochs << ","
       << obs::canonicalNumber(cluster.power_budget_w) << ","
       << obs::canonicalNumber(cluster.floor_fraction)
       << ";aware=" << (fault_aware ? 1 : 0)
       << ";wd=" << watchdog_attempts
       << ";faults=" << faults.canonical();
    return os.str();
}

std::string
FaultDomainStats::toJson() const
{
    std::ostringstream os;
    os << "{\"crashes\":" << crashes << ",\"reboots\":" << reboots
       << ",\"dropped_requests\":" << dropped_requests
       << ",\"dropped_gi\":" << obs::canonicalNumber(dropped_gi)
       << ",\"lost_epochs\":" << lost_epochs
       << ",\"degraded_epochs\":" << degraded_epochs
       << ",\"watchdog_timeouts\":" << watchdog_timeouts
       << ",\"shard_retries\":" << shard_retries << "}";
    return os.str();
}

void
FaultDomainStats::save(obs::StateWriter& w) const
{
    w.i64("fd.crashes", crashes);
    w.i64("fd.reboots", reboots);
    w.i64("fd.dropped_requests", dropped_requests);
    w.f64("fd.dropped_gi", dropped_gi);
    w.i64("fd.lost_epochs", lost_epochs);
    w.i64("fd.degraded_epochs", degraded_epochs);
    w.i64("fd.watchdog_timeouts", watchdog_timeouts);
    w.i64("fd.shard_retries", shard_retries);
}

void
FaultDomainStats::load(obs::StateReader& r)
{
    crashes = r.i64("fd.crashes");
    reboots = r.i64("fd.reboots");
    dropped_requests = r.i64("fd.dropped_requests");
    dropped_gi = r.f64("fd.dropped_gi");
    lost_epochs = r.i64("fd.lost_epochs");
    degraded_epochs = r.i64("fd.degraded_epochs");
    watchdog_timeouts = r.i64("fd.watchdog_timeouts");
    shard_retries = r.i64("fd.shard_retries");
}

std::string
AdaptStats::toJson() const
{
    std::ostringstream os;
    os << "{\"drift_events\":" << drift_events
       << ",\"syntheses\":" << syntheses
       << ",\"cache_hits\":" << cache_hits << ",\"swaps\":" << swaps
       << "}";
    return os.str();
}

FleetBoard::FleetBoard(controllers::MultilayerSystem sys)
    : system(std::move(sys)), latency(latencyHistogram())
{
}

FleetSim::FleetSim(FleetConfig cfg, const core::Artifacts& artifacts)
    : cfg_(std::move(cfg)), artifacts_(artifacts),
      service_app_(platform::AppCatalog::makeServiceApp(
          cfg_.service.threads, cfg_.service.ipc_big,
          cfg_.service.mem_boundness)),
      arrivals_(cfg_.arrivals,
                static_cast<std::uint64_t>(cfg_.seed) ^
                    0x666c6565745f7631ull),  // "fleet_v1"
      admission_(cfg_.admission, cfg_.boards),
      cluster_(cfg_.cluster, artifacts.cfg, cfg_.boards)
{
    if (cfg_.boards <= 0) {
        throw std::invalid_argument("FleetSim: boards must be positive");
    }
    if (!(cfg_.sim_seconds > 0.0)) {
        throw std::invalid_argument(
            "FleetSim: sim_seconds must be positive");
    }
    if (cfg_.watchdog_attempts < 1) {
        throw std::invalid_argument(
            "FleetSim: watchdog_attempts must be >= 1");
    }
    if (!(cfg_.watchdog_timeout_s > 0.0) ||
        cfg_.watchdog_backoff_s < 0.0) {
        throw std::invalid_argument(
            "FleetSim: watchdog timeout must be positive and backoff "
            "non-negative");
    }
    for (const fault::FaultWindow& w : cfg_.faults.windows) {
        if (w.target != fault::FaultTarget::kBoard) {
            throw std::invalid_argument(
                "FleetSim: fleet fault plans take board<i> targets "
                "only (got '" +
                fault::faultTargetId(w.target) + "')");
        }
        if (w.board < 0 || w.board >= cfg_.boards) {
            throw std::invalid_argument(
                "FleetSim: fault targets board" +
                std::to_string(w.board) + " but the fleet has " +
                std::to_string(cfg_.boards) + " boards");
        }
    }
    crash_entered_.assign(cfg_.faults.windows.size(), 0);
    crash_exited_.assign(cfg_.faults.windows.size(), 0);

    boards_.reserve(static_cast<std::size_t>(cfg_.boards));
    for (int b = 0; b < cfg_.boards; ++b) {
        controllers::MultilayerSystem sys = core::makeSystem(
            cfg_.scheme, artifacts_, platform::Workload(service_app_),
            boardSeed(b));
        if (cfg_.supervised) {
            sys.enableSupervisor();
        }
        auto fb = std::make_unique<FleetBoard>(std::move(sys));
        if (cfg_.adapt) {
            fb->adapter =
                core::makeHwAdapter(artifacts_, cfg_.adapt_options);
            fb->adapter->setTraceSink(fb->system.traceSink());
        }
        boards_.push_back(std::move(fb));
    }
}

std::uint32_t
FleetSim::boardSeed(int b) const
{
    // Counter-hashed per-board seed: decorrelated sensor noise,
    // independent of every other config knob.
    return static_cast<std::uint32_t>(
        mix64(static_cast<std::uint64_t>(cfg_.seed) ^
              (static_cast<std::uint64_t>(b) * 0x9e3779b97f4a7c15ull)));
}

void
FleetSim::applyCrashTransitions(int epoch, double t0)
{
    for (std::size_t i = 0; i < cfg_.faults.windows.size(); ++i) {
        const fault::FaultWindow& w = cfg_.faults.windows[i];
        if (w.kind != fault::FaultKind::kBoardCrash) {
            continue;
        }
        FleetBoard& fb = *boards_[static_cast<std::size_t>(w.board)];
        if (w.active(t0) && crash_entered_[i] == 0) {
            crash_entered_[i] = 1;
            ++fault_stats_.crashes;
            fb.down = true;
            fb.bips_ema = 0.0;
            fb.power_ema = 0.0;
            if (!(w.magnitude > 0.0)) {
                // Default crash loses the in-memory queue; a positive
                // magnitude models a persisted queue that survives.
                fault_stats_.dropped_requests +=
                    static_cast<long long>(fb.queue.size());
                fault_stats_.dropped_gi += fb.queued_gi;
                fb.queue.clear();
                fb.queued_gi = 0.0;
            }
        }
        if (crash_entered_[i] != 0 && crash_exited_[i] == 0 &&
            t0 >= w.start + w.duration) {
            crash_exited_[i] = 1;
            rebootBoard(w.board, epoch, t0);
        }
    }
}

void
FleetSim::rebootBoard(int b, int epoch, double t0)
{
    FleetBoard& fb = *boards_[static_cast<std::size_t>(b)];
    // Bank the dead instance's accumulators: the replacement board
    // restarts its own counters at zero.
    fb.carried_energy += fb.system.board().energy();
    fb.carried_violation += fb.system.board().constraintViolationTime();
    fb.carried_emergency += fb.system.board().emergencyTime();
    ++fb.reboots;
    ++fault_stats_.reboots;

    // Reboot-hashed seed: the replacement is a fresh machine with a
    // fresh (but reproducible) sensor-noise stream.
    const auto seed = static_cast<std::uint32_t>(
        mix64(static_cast<std::uint64_t>(boardSeed(b)) ^
              (static_cast<std::uint64_t>(fb.reboots) *
               0x9e3779b97f4a7c15ull)));
    controllers::MultilayerSystem sys = core::makeSystem(
        cfg_.scheme, artifacts_, platform::Workload(service_app_), seed);
    if (cfg_.supervised) {
        sys.enableSupervisor();
        // Cold boots re-enter service through the supervisor ladder:
        // kSafe first, then earn the way back to kNominal.
        sys.supervisor()->coldBoot(epoch, t0,
                                   "board" + std::to_string(b) +
                                       " cold reboot");
    }

    auto fresh = std::make_unique<FleetBoard>(std::move(sys));
    FleetBoard& nf = *fresh;
    nf.queue = std::move(fb.queue);
    nf.queued_gi = fb.queued_gi;
    nf.arrival_gi_ema = fb.arrival_gi_ema;
    nf.latency = fb.latency;
    nf.epoch_bips = fb.epoch_bips;
    nf.epoch_power = fb.epoch_power;
    nf.completed = fb.completed;
    nf.served_gi = fb.served_gi;
    nf.slo_violation_time = fb.slo_violation_time;
    nf.lost_until = fb.lost_until;
    nf.reboots = fb.reboots;
    nf.carried_energy = fb.carried_energy;
    nf.carried_violation = fb.carried_violation;
    nf.carried_emergency = fb.carried_emergency;
    // Overlapping crash windows keep the replacement dark too.
    for (const fault::FaultWindow& w : cfg_.faults.windows) {
        if (w.kind == fault::FaultKind::kBoardCrash && w.board == b &&
            w.active(t0)) {
            nf.down = true;
        }
    }
    if (cfg_.adapt) {
        // The replacement is a fresh machine: its adaptation loop
        // re-learns from the shipped model, like the controllers
        // restart from the shipped design. The dead instance's
        // counters are not carried (they describe a different board).
        nf.adapter = core::makeHwAdapter(artifacts_, cfg_.adapt_options);
        nf.adapter->setTraceSink(nf.system.traceSink());
    }
    boards_[static_cast<std::size_t>(b)] = std::move(fresh);
}

void
FleetSim::applyDriftWindows(double t0)
{
    bool any = false;
    for (const fault::FaultWindow& w : cfg_.faults.windows) {
        any = any || w.kind == fault::FaultKind::kBoardDrift;
    }
    if (!any) {
        return;
    }
    for (int b = 0; b < cfg_.boards; ++b) {
        double scale = 1.0;
        for (const fault::FaultWindow& w : cfg_.faults.windows) {
            if (w.kind != fault::FaultKind::kBoardDrift ||
                w.board != b || !w.active(t0)) {
                continue;
            }
            scale *= w.magnitude > 0.0 ? w.magnitude : kDefaultDriftScale;
        }
        boards_[static_cast<std::size_t>(b)]
            ->system.board()
            .setPowerDriftScale(scale);
    }
}

void
FleetSim::stepAdaptation(std::size_t workers, double t0)
{
    // Dispatch due re-syntheses as background jobs on the pool. Each
    // task is board-local and deterministic, so the outcome is
    // independent of worker count and scheduling; a failed synthesis
    // disables that board's adapter (kDisabled), never the run.
    std::vector<runner::Task> tasks;
    for (const auto& fbp : boards_) {
        FleetBoard& fb = *fbp;
        if (fb.adapter == nullptr || fb.down ||
            !fb.adapter->synthesisDue()) {
            continue;
        }
        core::OnlineAdapter* adapter = fb.adapter.get();
        tasks.push_back([adapter](const runner::CancelToken&) {
            if (!adapter->synthesize()) {
                throw std::runtime_error("adapt synthesis failed");
            }
        });
    }
    if (!tasks.empty()) {
        runner::RetryPolicy retry;
        retry.max_attempts = 2;
        runner::runOnPool(tasks, workers, 0.0, {}, retry);
    }

    // Install due swaps serially in board index order, through the
    // bumpless-transfer + supervisor-ladder path.
    for (const auto& fbp : boards_) {
        FleetBoard& fb = *fbp;
        if (fb.adapter == nullptr || fb.down || t0 < fb.lost_until ||
            !fb.adapter->swapDue()) {
            continue;
        }
        if (fb.system.hotSwapHwRuntime(fb.adapter->makePendingRuntime())) {
            fb.adapter->noteSwapped();
        } else {
            // The arrangement has no SSV hardware layer to swap
            // (heuristic / LQG / monolithic): adaptation stands down.
            fb.adapter.reset();
        }
    }
}

double
FleetSim::drainScale(int b, double t0) const
{
    double scale = 1.0;
    for (const fault::FaultWindow& w : cfg_.faults.windows) {
        if (w.kind != fault::FaultKind::kBoardDegrade || w.board != b ||
            !w.active(t0)) {
            continue;
        }
        const double mag =
            w.magnitude > 0.0 ? w.magnitude : kDefaultDegradeScale;
        scale = std::min(scale, mag);
    }
    return scale;
}

bool
FleetSim::hangBlocks(int b, double t0, int attempt) const
{
    for (const fault::FaultWindow& w : cfg_.faults.windows) {
        if (w.kind != fault::FaultKind::kShardHang || w.board != b ||
            !w.active(t0)) {
            continue;
        }
        if (attempt < 0) {
            return true;  // Fault-blind: the stall is never noticed.
        }
        if (w.magnitude > 0.0) {
            return true;  // Persistent: stalls every attempt.
        }
        if (attempt == 0) {
            return true;  // Transient: resolves on the first retry.
        }
    }
    return false;
}

bool
FleetSim::anyHangActive(double t0) const
{
    for (const fault::FaultWindow& w : cfg_.faults.windows) {
        if (w.kind == fault::FaultKind::kShardHang && w.active(t0)) {
            return true;
        }
    }
    return false;
}

std::vector<double>
FleetSim::capacityScale(double t0) const
{
    std::vector<double> scale(boards_.size(), 1.0);
    for (std::size_t b = 0; b < boards_.size(); ++b) {
        const FleetBoard& fb = *boards_[b];
        if (fb.down || t0 < fb.lost_until) {
            scale[b] = 0.0;  // Dark or lost: advertises nothing.
            continue;
        }
        scale[b] = drainScale(static_cast<int>(b), t0);
    }
    return scale;
}

void
FleetSim::stepBoard(FleetBoard& fb, double epoch_end,
                    double drain_scale) const
{
    fb.system.stepPeriod();
    drainBoard(fb, epoch_end, drain_scale);
}

void
FleetSim::drainBoard(FleetBoard& fb, double epoch_end,
                     double drain_scale) const
{
    const double instr = fb.system.board().perfCounters().total();
    const double served = std::max(0.0, instr - fb.last_instr);
    fb.last_instr = instr;
    const double bips = served / kControlPeriod;

    const double energy = fb.system.board().energy();
    const double power =
        std::max(0.0, energy - fb.last_energy) / kControlPeriod;
    fb.last_energy = energy;

    fb.bips_ema = kEmaAlpha * bips + (1.0 - kEmaAlpha) * fb.bips_ema;
    fb.power_ema = kEmaAlpha * power + (1.0 - kEmaAlpha) * fb.power_ema;
    fb.epoch_bips.add(bips);
    fb.epoch_power.add(power);

    if (fb.adapter != nullptr) {
        // Feed the adaptation loop the same signals the hardware
        // layer was identified on (see the training campaign): the
        // requested operating point + OS policy as inputs, the sensed
        // plant response as outputs. Board-local and deterministic,
        // so this runs inside the parallel shard phase.
        const platform::Board& board = fb.system.board();
        const platform::HardwareInputs& req = board.requestedHardware();
        const platform::PlacementPolicy& pol = board.placementPolicy();
        const double thr_big = std::min(
            pol.threads_big,
            static_cast<double>(board.threadsRunning()));
        const linalg::Vector u{static_cast<double>(req.big_cores),
                               static_cast<double>(req.little_cores),
                               req.freq_big,
                               req.freq_little,
                               thr_big,
                               pol.tpc_big,
                               pol.tpc_little};
        const linalg::Vector y{bips, board.sensedPowerBig(),
                               board.sensedPowerLittle(),
                               board.sensedTemperature()};
        fb.adapter->observe(u, y);
    }

    // Drain the queue at the rate of work actually retired, cut to
    // the degraded service fraction. Capacity beyond the backlog is
    // idle service (not banked).
    double budget = served * drain_scale;
    while (!fb.queue.empty() && budget > 0.0) {
        Request& r = fb.queue.front();
        const double take = std::min(budget, r.remaining_gi);
        r.remaining_gi -= take;
        budget -= take;
        fb.served_gi += take;
        fb.queued_gi = std::max(0.0, fb.queued_gi - take);
        if (r.remaining_gi <= 1e-12) {
            // Completion is booked at the epoch boundary: the drain
            // model has no sub-period timeline, and a conservative
            // (late) completion time keeps the latency rollup honest.
            fb.latency.observe(epoch_end - r.arrival_time);
            ++fb.completed;
            fb.queue.pop_front();
        }
    }
}

FleetMetrics
FleetSim::run(std::size_t workers, const CheckpointConfig& ckpt)
{
    const obs::Stopwatch wall;
    if (ckpt.every_epochs > 0 && ckpt.dir.empty()) {
        throw std::invalid_argument(
            "FleetSim: checkpointing needs a directory");
    }
    const int epochs = static_cast<int>(
        std::ceil(cfg_.sim_seconds / kControlPeriod - 1e-9));

    const int num_boards = cfg_.boards;
    const int num_shards =
        cfg_.shards <= 0 ? num_boards : std::min(cfg_.shards, num_boards);

    // One batch engine per shard (shards are shared-nothing, and the
    // engine's SoA workspaces then persist across epochs). Boards in
    // a shard share controller artifacts, so their state machines
    // land in common shape-class groups and tick as one blocked
    // matrix-matrix pass.
    std::vector<controllers::BatchRuntime> shard_batches;
    if (cfg_.batch_tick) {
        shard_batches.resize(static_cast<std::size_t>(num_shards));
    }

    for (int epoch = epoch_; epoch < epochs; ++epoch) {
        const double t0 = static_cast<double>(epoch) * kControlPeriod;
        const double epoch_end = t0 + kControlPeriod;

        // --- Fault domain: crash entries and cold reboots. ---
        applyCrashTransitions(epoch, t0);
        applyDriftWindows(t0);

        // --- Serial coordinator phase (board index order). ---
        std::vector<double> scale;
        const std::vector<double>* scale_ptr = nullptr;
        if (cfg_.fault_aware && !cfg_.faults.empty()) {
            scale = capacityScale(t0);
            scale_ptr = &scale;
        }
        std::vector<double> projected(
            static_cast<std::size_t>(num_boards), 0.0);
        for (int b = 0; b < num_boards; ++b) {
            projected[static_cast<std::size_t>(b)] =
                boards_[static_cast<std::size_t>(b)]->queued_gi;
        }
        for (int b = 0; b < num_boards; ++b) {
            FleetBoard& origin = *boards_[static_cast<std::size_t>(b)];
            const std::vector<Request> reqs =
                arrivals_.epochArrivals(b, epoch, t0, kControlPeriod);
            double offered_gi = 0.0;
            for (const Request& r : reqs) {
                offered_gi += r.demand_gi;
                const int dest =
                    admission_.route(r, projected, scale_ptr);
                if (dest >= 0) {
                    FleetBoard& fb =
                        *boards_[static_cast<std::size_t>(dest)];
                    fb.queue.push_back(r);
                    fb.queued_gi += r.demand_gi;
                }
            }
            origin.arrival_gi_ema = kEmaAlpha * offered_gi +
                                    (1.0 - kEmaAlpha) *
                                        origin.arrival_gi_ema;
        }

        if (cluster_supported_ && cluster_.due(epoch)) {
            std::vector<BoardTelemetry> telemetry;
            telemetry.reserve(boards_.size());
            for (const auto& fb : boards_) {
                BoardTelemetry t;
                t.queued_gi = fb->queued_gi;
                t.arrival_gi_ema = fb->arrival_gi_ema;
                t.bips_ema = fb->bips_ema;
                t.power_ema = fb->power_ema;
                telemetry.push_back(t);
            }
            const std::vector<linalg::Vector> targets =
                cluster_.computeTargets(telemetry);
            bool applied = true;
            for (std::size_t b = 0; b < boards_.size(); ++b) {
                if (scale_ptr != nullptr && (*scale_ptr)[b] <= 0.0) {
                    continue;  // Aware mode: skip dark/lost boards.
                }
                applied =
                    boards_[b]->system.holdHwTargets(targets[b]) &&
                    applied;
            }
            if (applied) {
                cluster_.noteRound();
            } else {
                // Heuristic / monolithic arrangements have no target
                // hook; the fleet then leaves boards self-governed.
                cluster_supported_ = false;
            }
        }

        // Tally degraded service (serial, deterministic).
        for (int b = 0; b < num_boards; ++b) {
            const FleetBoard& fb = *boards_[static_cast<std::size_t>(b)];
            if (!fb.down && t0 >= fb.lost_until &&
                drainScale(b, t0) < 1.0) {
                ++fault_stats_.degraded_epochs;
            }
        }

        // --- Parallel shared-nothing shard phase. ---
        // Which boards stepped is recorded by the shards themselves
        // (disjoint writers, read after join); the watchdog decides
        // from these flags, never from wall-clock task outcomes, so
        // faulted runs stay bit-identical for any worker count.
        std::vector<char> stepped(static_cast<std::size_t>(num_boards),
                                  0);
        for (int b = 0; b < num_boards; ++b) {
            FleetBoard& fb = *boards_[static_cast<std::size_t>(b)];
            if (fb.down) {
                stepped[static_cast<std::size_t>(b)] = 1;  // Dark.
            } else if (t0 < fb.lost_until) {
                stepped[static_cast<std::size_t>(b)] = 1;
                ++fault_stats_.lost_epochs;  // Known-lost to a hang.
            }
        }

        const auto makeTasks = [&](int attempt, bool block_on_hang) {
            std::vector<runner::Task> tasks;
            for (int s = 0; s < num_shards; ++s) {
                // Contiguous block partition: shard s owns [lo, hi).
                const int lo = static_cast<int>(
                    static_cast<long long>(s) * num_boards / num_shards);
                const int hi = static_cast<int>(static_cast<long long>(
                                                    s + 1) *
                                                num_boards / num_shards);
                bool needed = false;
                for (int b = lo; b < hi; ++b) {
                    needed =
                        needed || stepped[static_cast<std::size_t>(b)] == 0;
                }
                if (!needed) {
                    continue;
                }
                controllers::BatchRuntime* batch =
                    cfg_.batch_tick
                        ? &shard_batches[static_cast<std::size_t>(s)]
                        : nullptr;
                tasks.push_back([this, lo, hi, t0, epoch_end, attempt,
                                 block_on_hang, batch, &stepped](
                                    const runner::CancelToken& token) {
                    bool hung = false;
                    // Boards this attempt may step (skip list is
                    // identical to the scalar path's).
                    std::vector<int> ready;
                    ready.reserve(static_cast<std::size_t>(hi - lo));
                    for (int b = lo; b < hi; ++b) {
                        if (stepped[static_cast<std::size_t>(b)] != 0) {
                            continue;
                        }
                        if (hangBlocks(b, t0, attempt)) {
                            hung = true;
                            continue;
                        }
                        ready.push_back(b);
                    }
                    if (batch != nullptr) {
                        // Batched tick: stage every board's period,
                        // advance the shared shape-class groups in
                        // one blocked pass, then scatter back into
                        // each board's supervisor/fault/drain path.
                        for (int b : ready) {
                            boards_[static_cast<std::size_t>(b)]
                                ->system.stepPeriodBegin(batch);
                        }
                        batch->tick();
                        for (int b : ready) {
                            FleetBoard& fb =
                                *boards_[static_cast<std::size_t>(b)];
                            fb.system.stepPeriodFinish();
                            drainBoard(fb, epoch_end, drainScale(b, t0));
                            stepped[static_cast<std::size_t>(b)] = 1;
                        }
                    } else {
                        for (int b : ready) {
                            stepBoard(
                                *boards_[static_cast<std::size_t>(b)],
                                epoch_end, drainScale(b, t0));
                            stepped[static_cast<std::size_t>(b)] = 1;
                        }
                    }
                    if (hung && block_on_hang) {
                        // Model the stall: this worker wedges until
                        // the watchdog deadline fires.
                        while (!token.deadlinePassed()) {
                            std::this_thread::yield();
                        }
                    }
                });
            }
            return tasks;
        };
        const auto runShards = [&](const std::vector<runner::Task>& tasks,
                                   double deadline) {
            const std::vector<runner::TaskOutcome> outcomes =
                runner::runOnPool(tasks, workers, deadline);
            for (const runner::TaskOutcome& o : outcomes) {
                if (o.status == runner::TaskOutcome::Status::kError) {
                    throw std::runtime_error(
                        "FleetSim: shard failed: " + o.error);
                }
            }
        };

        if (cfg_.fault_aware) {
            for (int attempt = 0; attempt < cfg_.watchdog_attempts;
                 ++attempt) {
                // The deadline exists only when a hang can fire; a
                // healthy epoch runs un-timed, exactly as before.
                const double deadline =
                    anyHangActive(t0)
                        ? cfg_.watchdog_timeout_s +
                              static_cast<double>(attempt) *
                                  cfg_.watchdog_backoff_s
                        : 0.0;
                const std::vector<runner::Task> tasks =
                    makeTasks(attempt, deadline > 0.0);
                if (tasks.empty()) {
                    break;
                }
                runShards(tasks, deadline);
                long long hung_now = 0;
                for (int b = 0; b < num_boards; ++b) {
                    if (stepped[static_cast<std::size_t>(b)] == 0 &&
                        hangBlocks(b, t0, attempt)) {
                        ++hung_now;
                    }
                }
                fault_stats_.watchdog_timeouts += hung_now;
                if (hung_now == 0) {
                    break;
                }
                if (attempt + 1 < cfg_.watchdog_attempts) {
                    ++fault_stats_.shard_retries;
                }
            }
            // Attempts exhausted: the epoch is lost for any board
            // still unstepped; a persistent hang marks the board lost
            // for the rest of its window so routing moves away.
            for (int b = 0; b < num_boards; ++b) {
                if (stepped[static_cast<std::size_t>(b)] != 0) {
                    continue;
                }
                FleetBoard& fb = *boards_[static_cast<std::size_t>(b)];
                ++fault_stats_.lost_epochs;
                for (const fault::FaultWindow& w :
                     cfg_.faults.windows) {
                    if (w.kind == fault::FaultKind::kShardHang &&
                        w.board == b && w.active(t0) &&
                        w.magnitude > 0.0) {
                        fb.lost_until = std::max(
                            fb.lost_until, w.start + w.duration);
                    }
                }
            }
        } else {
            // Fault-blind: no deadline, no retry. A hung board's
            // epoch is silently lost and nothing routes around it.
            runShards(makeTasks(-1, false), 0.0);
            for (int b = 0; b < num_boards; ++b) {
                if (stepped[static_cast<std::size_t>(b)] == 0) {
                    ++fault_stats_.lost_epochs;
                }
            }
        }

        // --- Serial adaptation coordinator: syntheses + swaps. ---
        if (cfg_.adapt) {
            stepAdaptation(workers, t0);
        }

        // --- Serial SLO accrual: dark and hung boards age too. ---
        for (int b = 0; b < num_boards; ++b) {
            FleetBoard& fb = *boards_[static_cast<std::size_t>(b)];
            if (!fb.queue.empty() &&
                epoch_end - fb.queue.front().arrival_time >
                    cfg_.slo_seconds) {
                fb.slo_violation_time += kControlPeriod;
            }
        }

        epoch_ = epoch + 1;
        if (ckpt.every_epochs > 0 && epoch_ < epochs &&
            epoch_ % ckpt.every_epochs == 0) {
            saveCheckpoint(ckpt.dir + "/fleet-" +
                           std::to_string(epoch_) + ".ckpt");
            saveCheckpoint(ckpt.dir + "/fleet-latest.ckpt");
        }
    }
    epoch_ = epochs;

    // --- Deterministic rollup merge (board index order). ---
    FleetMetrics m;
    m.boards = num_boards;
    m.epochs = epochs;
    m.sim_seconds = static_cast<double>(epochs) * kControlPeriod;
    m.latency = latencyHistogram();
    for (const auto& fb : boards_) {
        m.latency.merge(fb->latency);
        m.board_bips.merge(fb->epoch_bips);
        m.board_power.merge(fb->epoch_power);
        m.completed += fb->completed;
        m.served_gi += fb->served_gi;
        m.energy += fb->carried_energy + fb->system.board().energy();
        m.slo_violation_time += fb->slo_violation_time;
        m.constraint_violation_time +=
            fb->carried_violation +
            fb->system.board().constraintViolationTime();
        m.emergency_time +=
            fb->carried_emergency + fb->system.board().emergencyTime();
        m.backlog_gi += fb->queued_gi;
        if (fb->adapter != nullptr) {
            m.adapt.drift_events += fb->adapter->driftEvents();
            m.adapt.syntheses += fb->adapter->syntheses();
            m.adapt.cache_hits += fb->adapter->cacheHits();
            m.adapt.swaps += fb->adapter->swaps();
        }
    }
    m.exd = m.energy * m.sim_seconds;
    m.admission = admission_.stats();
    m.cluster_rounds = cluster_.rounds();
    m.faults = fault_stats_;

    m.wall_seconds = wall.seconds();
    m.board_ticks_per_sec =
        m.wall_seconds > 0.0
            ? static_cast<double>(num_boards) *
                  static_cast<double>(epochs) / m.wall_seconds
            : 0.0;
    return m;
}

void
FleetSim::saveCheckpoint(const std::string& path) const
{
    obs::StateWriter w;
    w.u64("ckpt.version", kCheckpointVersion);
    w.str("ckpt.config", cfg_.canonical());
    w.u64("ckpt.epoch", static_cast<std::uint64_t>(epoch_));
    w.boolean("ckpt.cluster_supported", cluster_supported_);
    admission_.save(w);
    cluster_.save(w);
    fault_stats_.save(w);
    std::vector<std::uint64_t> entered(crash_entered_.begin(),
                                       crash_entered_.end());
    std::vector<std::uint64_t> exited(crash_exited_.begin(),
                                      crash_exited_.end());
    w.u64vec("ckpt.crash_entered", entered);
    w.u64vec("ckpt.crash_exited", exited);
    w.u64("ckpt.boards", boards_.size());
    for (const auto& fbp : boards_) {
        const FleetBoard& fb = *fbp;
        w.u64("fb.queue.n", fb.queue.size());
        for (const Request& q : fb.queue) {
            w.f64("fb.q.arrival", q.arrival_time);
            w.f64("fb.q.demand", q.demand_gi);
            w.f64("fb.q.remaining", q.remaining_gi);
            w.i64("fb.q.origin", q.origin);
        }
        w.f64("fb.queued_gi", fb.queued_gi);
        w.f64("fb.last_instr", fb.last_instr);
        w.f64("fb.last_energy", fb.last_energy);
        w.f64("fb.arrival_gi_ema", fb.arrival_gi_ema);
        w.f64("fb.bips_ema", fb.bips_ema);
        w.f64("fb.power_ema", fb.power_ema);
        fb.latency.save(w);
        fb.epoch_bips.save(w);
        fb.epoch_power.save(w);
        w.i64("fb.completed", fb.completed);
        w.f64("fb.served_gi", fb.served_gi);
        w.f64("fb.slo_violation_time", fb.slo_violation_time);
        w.boolean("fb.down", fb.down);
        w.f64("fb.lost_until", fb.lost_until);
        w.i64("fb.reboots", fb.reboots);
        w.f64("fb.carried_energy", fb.carried_energy);
        w.f64("fb.carried_violation", fb.carried_violation);
        w.f64("fb.carried_emergency", fb.carried_emergency);
        // Adapter state precedes the system snapshot: restore must
        // re-install any swapped hardware runtime *before* loading the
        // system so the controller state sizes match the stream.
        w.boolean("fb.adapt", fb.adapter != nullptr);
        if (fb.adapter != nullptr) {
            fb.adapter->save(w);
        }
        fb.system.save(w);
    }
    std::string body = w.dump();
    body += "ckpt.digest=" + hex64(obs::fnv1a(body)) + "\n";
    if (!core::atomicWriteFile(path, body)) {
        throw std::runtime_error("FleetSim: cannot write checkpoint " +
                                 path);
    }
}

void
FleetSim::restoreCheckpoint(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw std::runtime_error("FleetSim: cannot read checkpoint " +
                                 path);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    const std::string tag = "ckpt.digest=";
    const std::size_t p = text.rfind(tag);
    if (p == std::string::npos) {
        throw std::runtime_error(
            "FleetSim: checkpoint has no digest stamp: " + path);
    }
    const std::string body = text.substr(0, p);
    std::string stamp = text.substr(p + tag.size());
    while (!stamp.empty() &&
           (stamp.back() == '\n' || stamp.back() == '\r')) {
        stamp.pop_back();
    }
    if (stamp != hex64(obs::fnv1a(body))) {
        throw std::runtime_error(
            "FleetSim: checkpoint digest mismatch (corrupt or "
            "truncated): " +
            path);
    }

    obs::StateReader r(body);
    const std::uint64_t version = r.u64("ckpt.version");
    if (version != kCheckpointVersion) {
        throw std::runtime_error(
            "FleetSim: unsupported checkpoint version " +
            std::to_string(version) + " (expected " +
            std::to_string(kCheckpointVersion) + ")");
    }
    const std::string config = r.str("ckpt.config");
    if (config != cfg_.canonical()) {
        throw std::runtime_error(
            "FleetSim: checkpoint config mismatch:\n  checkpoint: " +
            config + "\n  runtime:    " + cfg_.canonical());
    }
    epoch_ = static_cast<int>(r.u64("ckpt.epoch"));
    cluster_supported_ = r.boolean("ckpt.cluster_supported");
    admission_.load(r);
    cluster_.load(r);
    fault_stats_.load(r);
    const std::vector<std::uint64_t> entered =
        r.u64vec("ckpt.crash_entered");
    const std::vector<std::uint64_t> exited =
        r.u64vec("ckpt.crash_exited");
    if (entered.size() != cfg_.faults.windows.size() ||
        exited.size() != cfg_.faults.windows.size()) {
        throw std::runtime_error(
            "FleetSim: checkpoint fault-window count mismatch");
    }
    crash_entered_.assign(entered.begin(), entered.end());
    crash_exited_.assign(exited.begin(), exited.end());
    const std::uint64_t n = r.u64("ckpt.boards");
    if (n != boards_.size()) {
        throw std::runtime_error(
            "FleetSim: checkpoint board count mismatch");
    }
    for (const auto& fbp : boards_) {
        FleetBoard& fb = *fbp;
        const std::uint64_t qn = r.u64("fb.queue.n");
        fb.queue.clear();
        for (std::uint64_t i = 0; i < qn; ++i) {
            Request q;
            q.arrival_time = r.f64("fb.q.arrival");
            q.demand_gi = r.f64("fb.q.demand");
            q.remaining_gi = r.f64("fb.q.remaining");
            q.origin = static_cast<int>(r.i64("fb.q.origin"));
            fb.queue.push_back(q);
        }
        fb.queued_gi = r.f64("fb.queued_gi");
        fb.last_instr = r.f64("fb.last_instr");
        fb.last_energy = r.f64("fb.last_energy");
        fb.arrival_gi_ema = r.f64("fb.arrival_gi_ema");
        fb.bips_ema = r.f64("fb.bips_ema");
        fb.power_ema = r.f64("fb.power_ema");
        fb.latency.load(r);
        fb.epoch_bips.load(r);
        fb.epoch_power.load(r);
        fb.completed = r.i64("fb.completed");
        fb.served_gi = r.f64("fb.served_gi");
        fb.slo_violation_time = r.f64("fb.slo_violation_time");
        fb.down = r.boolean("fb.down");
        fb.lost_until = r.f64("fb.lost_until");
        fb.reboots = r.i64("fb.reboots");
        fb.carried_energy = r.f64("fb.carried_energy");
        fb.carried_violation = r.f64("fb.carried_violation");
        fb.carried_emergency = r.f64("fb.carried_emergency");
        const bool had_adapter = r.boolean("fb.adapt");
        if (had_adapter != (fb.adapter != nullptr)) {
            throw std::runtime_error(
                "FleetSim: checkpoint adaptation mismatch (restore "
                "with the same --adapt setting it was saved with)");
        }
        if (fb.adapter != nullptr) {
            fb.adapter->load(r);
            if (fb.adapter->hasInstalledController() &&
                !fb.system.installHwRuntime(
                    fb.adapter->makeInstalledRuntime())) {
                throw std::runtime_error(
                    "FleetSim: checkpoint carries a swapped hardware "
                    "controller but the scheme cannot install one");
            }
        }
        fb.system.load(r);
    }
    if (!r.atEnd()) {
        throw std::runtime_error(
            "FleetSim: trailing checkpoint state in " + path);
    }
}

std::string
FleetMetrics::toJson(bool include_wall) const
{
    std::ostringstream os;
    os << "{\"boards\":" << boards << ",\"epochs\":" << epochs
       << ",\"sim_seconds\":" << obs::canonicalNumber(sim_seconds)
       << ",\"admission\":" << admission.toJson()
       << ",\"cluster_rounds\":" << cluster_rounds
       << ",\"completed\":" << completed
       << ",\"served_gi\":" << obs::canonicalNumber(served_gi)
       << ",\"energy\":" << obs::canonicalNumber(energy)
       << ",\"exd\":" << obs::canonicalNumber(exd)
       << ",\"slo_violation_time\":"
       << obs::canonicalNumber(slo_violation_time)
       << ",\"constraint_violation_time\":"
       << obs::canonicalNumber(constraint_violation_time)
       << ",\"emergency_time\":" << obs::canonicalNumber(emergency_time)
       << ",\"backlog_gi\":" << obs::canonicalNumber(backlog_gi)
       << ",\"faults\":" << faults.toJson()
       << ",\"latency\":" << latency.toJson()
       << ",\"board_bips\":" << board_bips.toJson()
       << ",\"board_power\":" << board_power.toJson();
    if (include_wall) {
        os << ",\"wall_seconds\":" << obs::canonicalNumber(wall_seconds)
           << ",\"board_ticks_per_sec\":"
           << obs::canonicalNumber(board_ticks_per_sec)
           << ",\"adapt\":" << adapt.toJson();
    }
    os << "}";
    return os.str();
}

std::uint64_t
FleetMetrics::digest() const
{
    return obs::fnv1a(toJson(false));
}

}  // namespace yukta::fleet
