#include "fleet/fleet.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/stopwatch.h"
#include "obs/trace.h"
#include "platform/apps.h"
#include "runner/pool.h"

namespace yukta::fleet {

using controllers::kControlPeriod;

namespace {

/** EMA smoothing for the cluster-layer telemetry streams. */
constexpr double kEmaAlpha = 0.3;

/** All boards share these latency bucket bounds so rollups merge. */
obs::MergeableHistogram
latencyHistogram()
{
    // 10 ms .. 1000 s, 9 buckets per decade: resolves sub-period
    // latencies and multi-minute pathological backlogs alike.
    return obs::MergeableHistogram::logSpaced(0.01, 1000.0, 9);
}

}  // namespace

FleetBoard::FleetBoard(controllers::MultilayerSystem sys)
    : system(std::move(sys)), latency(latencyHistogram())
{
}

FleetSim::FleetSim(FleetConfig cfg, const core::Artifacts& artifacts)
    : cfg_(std::move(cfg)),
      arrivals_(cfg_.arrivals,
                static_cast<std::uint64_t>(cfg_.seed) ^
                    0x666c6565745f7631ull),  // "fleet_v1"
      admission_(cfg_.admission, cfg_.boards),
      cluster_(cfg_.cluster, artifacts.cfg, cfg_.boards)
{
    if (cfg_.boards <= 0) {
        throw std::invalid_argument("FleetSim: boards must be positive");
    }
    if (!(cfg_.sim_seconds > 0.0)) {
        throw std::invalid_argument(
            "FleetSim: sim_seconds must be positive");
    }
    const platform::AppModel service = platform::AppCatalog::makeServiceApp(
        cfg_.service.threads, cfg_.service.ipc_big,
        cfg_.service.mem_boundness);
    boards_.reserve(static_cast<std::size_t>(cfg_.boards));
    for (int b = 0; b < cfg_.boards; ++b) {
        // Counter-hashed per-board seed: decorrelated sensor noise,
        // independent of every other config knob.
        const auto board_seed = static_cast<std::uint32_t>(
            mix64(static_cast<std::uint64_t>(cfg_.seed) ^
                  (static_cast<std::uint64_t>(b) * 0x9e3779b97f4a7c15ull)));
        controllers::MultilayerSystem sys = core::makeSystem(
            cfg_.scheme, artifacts, platform::Workload(service),
            board_seed);
        if (cfg_.supervised) {
            sys.enableSupervisor();
        }
        boards_.push_back(std::make_unique<FleetBoard>(std::move(sys)));
    }
}

void
FleetSim::stepBoard(FleetBoard& fb, double epoch_end) const
{
    fb.system.stepPeriod();

    const double instr = fb.system.board().perfCounters().total();
    const double served = std::max(0.0, instr - fb.last_instr);
    fb.last_instr = instr;
    const double bips = served / kControlPeriod;

    const double energy = fb.system.board().energy();
    const double power =
        std::max(0.0, energy - fb.last_energy) / kControlPeriod;
    fb.last_energy = energy;

    fb.bips_ema = kEmaAlpha * bips + (1.0 - kEmaAlpha) * fb.bips_ema;
    fb.power_ema = kEmaAlpha * power + (1.0 - kEmaAlpha) * fb.power_ema;
    fb.epoch_bips.add(bips);
    fb.epoch_power.add(power);

    // Drain the queue at the rate of work actually retired. Capacity
    // beyond the backlog is idle service (not banked).
    double budget = served;
    while (!fb.queue.empty() && budget > 0.0) {
        Request& r = fb.queue.front();
        const double take = std::min(budget, r.remaining_gi);
        r.remaining_gi -= take;
        budget -= take;
        fb.served_gi += take;
        fb.queued_gi = std::max(0.0, fb.queued_gi - take);
        if (r.remaining_gi <= 1e-12) {
            // Completion is booked at the epoch boundary: the drain
            // model has no sub-period timeline, and a conservative
            // (late) completion time keeps the latency rollup honest.
            fb.latency.observe(epoch_end - r.arrival_time);
            ++fb.completed;
            fb.queue.pop_front();
        }
    }

    if (!fb.queue.empty() &&
        epoch_end - fb.queue.front().arrival_time > cfg_.slo_seconds) {
        fb.slo_violation_time += kControlPeriod;
    }
}

FleetMetrics
FleetSim::run(std::size_t workers)
{
    const obs::Stopwatch wall;
    const int epochs = static_cast<int>(
        std::ceil(cfg_.sim_seconds / kControlPeriod - 1e-9));

    const int num_boards = cfg_.boards;
    const int num_shards =
        cfg_.shards <= 0 ? num_boards : std::min(cfg_.shards, num_boards);

    for (int epoch = 0; epoch < epochs; ++epoch) {
        const double t0 = static_cast<double>(epoch) * kControlPeriod;
        const double epoch_end = t0 + kControlPeriod;

        // --- Serial coordinator phase (board index order). ---
        std::vector<double> projected(
            static_cast<std::size_t>(num_boards), 0.0);
        for (int b = 0; b < num_boards; ++b) {
            projected[static_cast<std::size_t>(b)] =
                boards_[static_cast<std::size_t>(b)]->queued_gi;
        }
        for (int b = 0; b < num_boards; ++b) {
            FleetBoard& origin = *boards_[static_cast<std::size_t>(b)];
            const std::vector<Request> reqs =
                arrivals_.epochArrivals(b, epoch, t0, kControlPeriod);
            double offered_gi = 0.0;
            for (const Request& r : reqs) {
                offered_gi += r.demand_gi;
                const int dest = admission_.route(r, projected);
                if (dest >= 0) {
                    FleetBoard& fb =
                        *boards_[static_cast<std::size_t>(dest)];
                    fb.queue.push_back(r);
                    fb.queued_gi += r.demand_gi;
                }
            }
            origin.arrival_gi_ema = kEmaAlpha * offered_gi +
                                    (1.0 - kEmaAlpha) *
                                        origin.arrival_gi_ema;
        }

        if (cluster_supported_ && cluster_.due(epoch)) {
            std::vector<BoardTelemetry> telemetry;
            telemetry.reserve(boards_.size());
            for (const auto& fb : boards_) {
                BoardTelemetry t;
                t.queued_gi = fb->queued_gi;
                t.arrival_gi_ema = fb->arrival_gi_ema;
                t.bips_ema = fb->bips_ema;
                t.power_ema = fb->power_ema;
                telemetry.push_back(t);
            }
            const std::vector<linalg::Vector> targets =
                cluster_.computeTargets(telemetry);
            bool applied = true;
            for (std::size_t b = 0; b < boards_.size(); ++b) {
                applied =
                    boards_[b]->system.holdHwTargets(targets[b]) &&
                    applied;
            }
            if (applied) {
                cluster_.noteRound();
            } else {
                // Heuristic / monolithic arrangements have no target
                // hook; the fleet then leaves boards self-governed.
                cluster_supported_ = false;
            }
        }

        // --- Parallel shared-nothing shard phase. ---
        std::vector<runner::Task> tasks;
        tasks.reserve(static_cast<std::size_t>(num_shards));
        for (int s = 0; s < num_shards; ++s) {
            // Contiguous block partition: shard s owns [lo, hi).
            const int lo = static_cast<int>(
                static_cast<long long>(s) * num_boards / num_shards);
            const int hi = static_cast<int>(
                static_cast<long long>(s + 1) * num_boards / num_shards);
            tasks.push_back([this, lo, hi,
                             epoch_end](const runner::CancelToken&) {
                for (int b = lo; b < hi; ++b) {
                    stepBoard(*boards_[static_cast<std::size_t>(b)],
                              epoch_end);
                }
            });
        }
        const std::vector<runner::TaskOutcome> outcomes =
            runner::runOnPool(tasks, workers);
        for (const runner::TaskOutcome& o : outcomes) {
            if (o.status != runner::TaskOutcome::Status::kOk) {
                throw std::runtime_error("FleetSim: shard failed: " +
                                         o.error);
            }
        }
    }

    // --- Deterministic rollup merge (board index order). ---
    FleetMetrics m;
    m.boards = num_boards;
    m.epochs = epochs;
    m.sim_seconds = static_cast<double>(epochs) * kControlPeriod;
    m.latency = latencyHistogram();
    for (const auto& fb : boards_) {
        m.latency.merge(fb->latency);
        m.board_bips.merge(fb->epoch_bips);
        m.board_power.merge(fb->epoch_power);
        m.completed += fb->completed;
        m.served_gi += fb->served_gi;
        m.energy += fb->system.board().energy();
        m.slo_violation_time += fb->slo_violation_time;
        m.constraint_violation_time +=
            fb->system.board().constraintViolationTime();
        m.emergency_time += fb->system.board().emergencyTime();
        m.backlog_gi += fb->queued_gi;
    }
    m.exd = m.energy * m.sim_seconds;
    m.admission = admission_.stats();
    m.cluster_rounds = cluster_.rounds();

    m.wall_seconds = wall.seconds();
    m.board_ticks_per_sec =
        m.wall_seconds > 0.0
            ? static_cast<double>(num_boards) *
                  static_cast<double>(epochs) / m.wall_seconds
            : 0.0;
    return m;
}

std::string
FleetMetrics::toJson(bool include_wall) const
{
    std::ostringstream os;
    os << "{\"boards\":" << boards << ",\"epochs\":" << epochs
       << ",\"sim_seconds\":" << obs::canonicalNumber(sim_seconds)
       << ",\"admission\":" << admission.toJson()
       << ",\"cluster_rounds\":" << cluster_rounds
       << ",\"completed\":" << completed
       << ",\"served_gi\":" << obs::canonicalNumber(served_gi)
       << ",\"energy\":" << obs::canonicalNumber(energy)
       << ",\"exd\":" << obs::canonicalNumber(exd)
       << ",\"slo_violation_time\":"
       << obs::canonicalNumber(slo_violation_time)
       << ",\"constraint_violation_time\":"
       << obs::canonicalNumber(constraint_violation_time)
       << ",\"emergency_time\":" << obs::canonicalNumber(emergency_time)
       << ",\"backlog_gi\":" << obs::canonicalNumber(backlog_gi)
       << ",\"latency\":" << latency.toJson()
       << ",\"board_bips\":" << board_bips.toJson()
       << ",\"board_power\":" << board_power.toJson();
    if (include_wall) {
        os << ",\"wall_seconds\":" << obs::canonicalNumber(wall_seconds)
           << ",\"board_ticks_per_sec\":"
           << obs::canonicalNumber(board_ticks_per_sec);
    }
    os << "}";
    return os.str();
}

std::uint64_t
FleetMetrics::digest() const
{
    return obs::fnv1a(toJson(false));
}

}  // namespace yukta::fleet
