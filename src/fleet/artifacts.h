#ifndef YUKTA_FLEET_ARTIFACTS_H_
#define YUKTA_FLEET_ARTIFACTS_H_

/**
 * @file
 * Shared artifact recipe for fleet runs. A fleet instantiates the
 * same controller design on every board, so the design flow runs
 * once; the reduced bundle (single D-K iteration, coarse mu grid --
 * the golden-trace recipe) keeps CLI, bench, and test start-up to
 * seconds while exercising the identical runtime stack.
 */

#include "core/schemes.h"

namespace yukta::fleet {

/**
 * Builds (or loads from the on-disk cache) the reduced artifact
 * bundle fleet runs execute against. Deterministic and bit-stable,
 * matching tests/golden/scenario.h's goldenArtifacts() so the two
 * share one cache entry.
 */
core::Artifacts fleetArtifacts();

}  // namespace yukta::fleet

#endif  // YUKTA_FLEET_ARTIFACTS_H_
