#ifndef YUKTA_FLEET_CLUSTER_H_
#define YUKTA_FLEET_CLUSTER_H_

/**
 * @file
 * Cluster controller: the third control layer the fleet adds above
 * each board's HW and OS controllers. Every few epochs it aggregates
 * per-board telemetry (backlog, offered load, measured BIPS and
 * power) and redistributes a fleet-wide power budget as per-board
 * output targets [BIPS, P_big, P_little, T], which the fleet pins
 * into each board's hardware controller via holdTargets. Loaded
 * boards get a larger share of the budget (and an ambitious BIPS
 * target); idle boards are throttled toward their floor, which is
 * where the fleet-level E x D win comes from.
 *
 * The controller is pure: telemetry in, target vectors out. The
 * fleet applies them, so this layer never touches board state and
 * stays trivially deterministic.
 */

#include <vector>

#include "linalg/vector.h"
#include "obs/stateio.h"
#include "platform/config.h"

namespace yukta::fleet {

/** Cluster-layer knobs. */
struct ClusterConfig
{
    bool enabled = true;

    /** Epochs between redistributions (>= 1). */
    int period_epochs = 8;

    /**
     * Fleet-wide big+little power budget in watts; <= 0 derives
     * 70% of the summed per-board caps (the per-board default
     * operating point).
     */
    double power_budget_w = 0.0;

    /** Smallest share of a board's power cap any board can get. */
    double floor_fraction = 0.25;
};

/** Per-board inputs to one redistribution. */
struct BoardTelemetry
{
    double queued_gi = 0.0;       ///< Outstanding demand backlog.
    double arrival_gi_ema = 0.0;  ///< Smoothed offered GI per epoch.
    double bips_ema = 0.0;        ///< Smoothed measured BIPS.
    double power_ema = 0.0;       ///< Smoothed board power (W).
};

/** Demand-proportional power/performance redistribution. */
class ClusterController
{
  public:
    /** Validates @p cfg and captures the per-board power envelope. */
    ClusterController(ClusterConfig cfg, platform::BoardConfig board_cfg,
                      int boards);

    /** @return true when epoch @p epoch is a redistribution epoch. */
    bool due(int epoch) const;

    /**
     * @return one [BIPS, P_big, P_little, T] target vector per board,
     * demand-share weighted within the fleet budget and clamped to
     * the per-board optimizer range.
     */
    std::vector<linalg::Vector>
    computeTargets(const std::vector<BoardTelemetry>& telemetry) const;

    /** Redistributions performed (due() epochs seen by the fleet). */
    int rounds() const { return rounds_; }

    /** Bumps the round counter (fleet calls this when it applies). */
    void noteRound() { ++rounds_; }

    /** Appends the round counter to @p w (fleet checkpointing). */
    void save(obs::StateWriter& w) const
    {
        w.i64("cluster.rounds", rounds_);
    }

    /** Restores state written by save. */
    void load(obs::StateReader& r)
    {
        rounds_ = static_cast<int>(r.i64("cluster.rounds"));
    }

    /** @return the validated configuration. */
    const ClusterConfig& config() const { return cfg_; }

  private:
    ClusterConfig cfg_;
    platform::BoardConfig board_cfg_;
    int boards_;
    int rounds_ = 0;
};

}  // namespace yukta::fleet

#endif  // YUKTA_FLEET_CLUSTER_H_
