#ifndef YUKTA_FLEET_ARRIVALS_H_
#define YUKTA_FLEET_ARRIVALS_H_

/**
 * @file
 * Open-loop request arrival model for the fleet simulator: a Poisson
 * process whose rate follows a diurnal (sinusoidal) profile, with
 * exponentially distributed per-request service demand measured in
 * giga-instructions.
 *
 * Draws are counter-hashed, not sequential: every random number is a
 * pure function of (seed, board, epoch, draw index) via a
 * splitmix64-style mixer. Routing or admission decisions therefore
 * never perturb the arrival stream -- two runs that only differ in
 * admission policy see byte-identical offered load, which is what
 * lets the benchmark require un-overloaded scenarios to be
 * bit-identical with admission on and off.
 */

#include <cstdint>
#include <vector>

namespace yukta::fleet {

/** Sinusoidal day/night request-rate profile. */
struct DiurnalProfile
{
    double base_rate = 8.0;        ///< Mean arrivals/sec per board.
    double amplitude = 0.0;        ///< Swing fraction, [0, 1).
    double period_seconds = 240.0; ///< One simulated "day".
    double phase = 0.0;            ///< Radians at t = 0.

    /** @return arrivals/sec at simulated time @p t (>= 0). */
    double rateAt(double t) const;
};

/** One service request offered to the fleet. */
struct Request
{
    double arrival_time = 0.0;  ///< Simulated arrival time (s).
    double demand_gi = 0.0;     ///< Service demand (giga-instr).
    double remaining_gi = 0.0;  ///< Demand not yet served.
    int origin = 0;             ///< Board the request arrived at.
};

/** Arrival-model knobs. */
struct ArrivalConfig
{
    DiurnalProfile profile;
    double mean_demand_gi = 1.0;  ///< Exponential demand mean.

    /**
     * Per-board rate multipliers (skewed-hotspot scenarios). Empty =
     * uniform; shorter than the fleet = 1.0 for the tail.
     */
    std::vector<double> board_weight;
};

/**
 * Deterministic arrival generator. All methods are const and
 * re-entrant: concurrent shards may query disjoint (board, epoch)
 * pairs without synchronization.
 */
class ArrivalGenerator
{
  public:
    /** Validates @p cfg (rates, period, demand) and binds @p seed. */
    ArrivalGenerator(ArrivalConfig cfg, std::uint64_t seed);

    /**
     * @return the requests arriving at @p board during the epoch
     * [@p t0, @p t0 + @p dt), ordered by draw index. The count is
     * Poisson with mean rate(t0) * weight(board) * dt; demands are
     * exponential with the configured mean.
     */
    std::vector<Request> epochArrivals(int board, int epoch, double t0,
                                       double dt) const;

    /** @return the rate multiplier for @p board. */
    double boardWeight(int board) const;

    /** @return the validated configuration. */
    const ArrivalConfig& config() const { return cfg_; }

  private:
    ArrivalConfig cfg_;
    std::uint64_t seed_;
};

/**
 * splitmix64-style stateless mixer: one well-scrambled 64-bit word
 * per (key) input. Exposed for the fleet's other counter-hashed
 * draws (per-board seeds).
 */
std::uint64_t mix64(std::uint64_t key);

/** @return mix64 of @p key folded to a uniform double in (0, 1). */
double mixUnit(std::uint64_t key);

}  // namespace yukta::fleet

#endif  // YUKTA_FLEET_ARRIVALS_H_
