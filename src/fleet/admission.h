#ifndef YUKTA_FLEET_ADMISSION_H_
#define YUKTA_FLEET_ADMISSION_H_

/**
 * @file
 * Fleet-level admission control: the resource-control layer between
 * the open-loop arrival stream and the boards. Each board advertises
 * a queue capacity in giga-instructions of outstanding demand; a
 * request that would overflow its origin is re-routed around the
 * board ring for a bounded number of hops and rejected when every
 * candidate is full.
 *
 * Admission runs in the coordinator's serial phase against a
 * *projected* queue depth (current backlog plus everything admitted
 * earlier this epoch), so the capacity bound holds at admission time
 * by construction -- the invariant the fleet property test checks.
 */

#include <cstddef>
#include <string>
#include <vector>

#include "fleet/arrivals.h"
#include "obs/stateio.h"

namespace yukta::fleet {

/** Admission-layer knobs. */
struct AdmissionConfig
{
    bool enabled = true;

    /**
     * Max outstanding demand a board may hold (giga-instructions).
     * At a ~4 BIPS service rate, 8 GI is ~2 s of backlog -- matched
     * to the default 2 s SLO, so a capacity-respecting queue rarely
     * ages past the SLO.
     */
    double queue_capacity_gi = 8.0;

    /** Ring re-route attempts before rejecting (0 = origin only). */
    int max_hops = 3;
};

/** Tally of admission outcomes (counts and demand mass). */
struct AdmissionStats
{
    long long offered = 0;
    long long accepted = 0;
    long long rejected = 0;
    long long rerouted = 0;  ///< Accepted at a non-origin board.
    double offered_gi = 0.0;
    double accepted_gi = 0.0;
    double rejected_gi = 0.0;

    /** @return canonical JSON object for these counters. */
    std::string toJson() const;

    /** Appends the counters to @p w (fleet checkpointing). */
    void save(obs::StateWriter& w) const;

    /** Restores counters written by save. */
    void load(obs::StateReader& r);
};

/**
 * Routes requests subject to per-board queue capacity. Serial-phase
 * only: route() mutates the shared projected-depth vector.
 */
class AdmissionController
{
  public:
    /** Validates @p cfg (capacity, hops) for a @p boards-wide fleet. */
    AdmissionController(AdmissionConfig cfg, int boards);

    /**
     * Routes @p r given projected per-board queue depths
     * @p queued_gi (updated in place on acceptance).
     *
     * @p capacity_scale, when non-null, scales each board's
     * advertised capacity: 1 = healthy, a fraction = degraded, 0 =
     * dark (a crashed or lost board accepts nothing and the ring
     * routes around it). Null means every board is healthy.
     *
     * @return the destination board, or -1 when rejected. Disabled
     * admission always accepts at the origin (the unbounded-queue,
     * fault-blind baseline) even when the origin is dark.
     */
    int route(const Request& r, std::vector<double>& queued_gi,
              const std::vector<double>* capacity_scale = nullptr);

    /** @return outcome tallies accumulated across route() calls. */
    const AdmissionStats& stats() const { return stats_; }

    /** Appends routing counters to @p w (fleet checkpointing). */
    void save(obs::StateWriter& w) const { stats_.save(w); }

    /** Restores counters written by save. */
    void load(obs::StateReader& r) { stats_.load(r); }

    /** @return the validated configuration. */
    const AdmissionConfig& config() const { return cfg_; }

  private:
    AdmissionConfig cfg_;
    int boards_;
    AdmissionStats stats_;
};

}  // namespace yukta::fleet

#endif  // YUKTA_FLEET_ADMISSION_H_
