#ifndef YUKTA_OBS_STOPWATCH_H_
#define YUKTA_OBS_STOPWATCH_H_

/**
 * @file
 * Minimal monotonic stopwatch. Wall-clock reads are confined to
 * src/obs and src/runner (yukta-lint rule wall-clock); code elsewhere
 * that needs a throughput number takes it through this type, which
 * keeps the timing readily greppable and out of deterministic run
 * results.
 */

#include <chrono>

namespace yukta::obs {

/** Measures elapsed wall time from construction (or restart()). */
class Stopwatch
{
  public:
    /** Starts timing immediately. */
    Stopwatch() : start_(std::chrono::steady_clock::now()) {}

    /** @return seconds elapsed since construction / last restart. */
    double seconds() const
    {
        const std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start_;
        return dt.count();
    }

    /** Re-zeroes the stopwatch. */
    void restart() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

}  // namespace yukta::obs

#endif  // YUKTA_OBS_STOPWATCH_H_
