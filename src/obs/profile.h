#ifndef YUKTA_OBS_PROFILE_H_
#define YUKTA_OBS_PROFILE_H_

/**
 * @file
 * RAII wall-clock profiling scopes for hot paths (H-infinity solves,
 * sysid fits, D-K iteration, the sweep worker loop).
 *
 *     void solve() { YUKTA_PROFILE_SCOPE("robust.hinf_solve"); ... }
 *
 * Each scope records its duration into the histogram
 * "profile.<name>" (seconds) in globalMetrics(). The macro expands to
 * `((void)0)` unless the tree is configured with -DYUKTA_TRACE=ON, so
 * instrumented hot paths pay nothing in regular builds — and because
 * timings land in the metrics registry, never in trace events, the
 * deterministic-trace guarantee (DESIGN.md §9) is unaffected either
 * way.
 */

#ifdef YUKTA_TRACE

#include <chrono>

#include "obs/metrics.h"

namespace yukta::obs {

/** Measures the lifetime of one scope into a profile histogram. */
class ProfileScope
{
  public:
    /** @param name stable scope name ("subsystem.operation"). */
    explicit ProfileScope(const char* name)
        : name_(name), start_(std::chrono::steady_clock::now())
    {
    }

    /** Records the elapsed time into histogram "profile.<name>". */
    ~ProfileScope()
    {
        std::chrono::duration<double> dt =
            std::chrono::steady_clock::now() - start_;
        globalMetrics()
            .histogram(std::string("profile.") + name_)
            .observe(dt.count());
    }

    ProfileScope(const ProfileScope&) = delete;
    ProfileScope& operator=(const ProfileScope&) = delete;

  private:
    const char* name_;
    std::chrono::steady_clock::time_point start_;
};

}  // namespace yukta::obs

#define YUKTA_OBS_CONCAT_INNER(a, b) a##b
#define YUKTA_OBS_CONCAT(a, b) YUKTA_OBS_CONCAT_INNER(a, b)
#define YUKTA_PROFILE_SCOPE(name)                                         \
    ::yukta::obs::ProfileScope /* yukta-lint: allow(doc-comment) */       \
        YUKTA_OBS_CONCAT(yukta_profile_scope_, __LINE__)(name)

#else

#define YUKTA_PROFILE_SCOPE(name) ((void)0)

#endif  // YUKTA_TRACE

#endif  // YUKTA_OBS_PROFILE_H_
