#include "obs/stateio.h"

#include <bit>
#include <cstdio>
#include <stdexcept>

namespace yukta::obs {

namespace {

/** @return the 16-hex-digit bit pattern of @p v. */
std::string hexBits(double v)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(
                      std::bit_cast<std::uint64_t>(v)));
    return std::string(buf);
}

int hexNibble(char c)
{
    if (c >= '0' && c <= '9') {
        return c - '0';
    }
    if (c >= 'a' && c <= 'f') {
        return c - 'a' + 10;
    }
    if (c >= 'A' && c <= 'F') {
        return c - 'A' + 10;
    }
    return -1;
}

}  // namespace

std::string percentEncode(const std::string& raw)
{
    std::string out;
    out.reserve(raw.size());
    for (char c : raw) {
        if (c == '%' || c == '=' || c == '\n' || c == '\r') {
            char buf[4];
            std::snprintf(buf, sizeof(buf), "%%%02x",
                          static_cast<unsigned char>(c));
            out += buf;
        } else {
            out += c;
        }
    }
    return out;
}

std::string percentDecode(const std::string& enc)
{
    std::string out;
    out.reserve(enc.size());
    for (std::size_t i = 0; i < enc.size(); ++i) {
        if (enc[i] != '%') {
            out += enc[i];
            continue;
        }
        if (i + 2 >= enc.size()) {
            throw std::runtime_error(
                "StateReader: truncated percent escape");
        }
        const int hi = hexNibble(enc[i + 1]);
        const int lo = hexNibble(enc[i + 2]);
        if (hi < 0 || lo < 0) {
            throw std::runtime_error(
                "StateReader: malformed percent escape");
        }
        out += static_cast<char>(hi * 16 + lo);
        i += 2;
    }
    return out;
}

void StateWriter::u64(const std::string& key, std::uint64_t v)
{
    os_ << key << '=' << v << '\n';
}

void StateWriter::i64(const std::string& key, long long v)
{
    os_ << key << '=' << v << '\n';
}

void StateWriter::boolean(const std::string& key, bool v)
{
    os_ << key << '=' << (v ? 1 : 0) << '\n';
}

void StateWriter::f64(const std::string& key, double v)
{
    os_ << key << '=' << hexBits(v) << '\n';
}

void StateWriter::str(const std::string& key, const std::string& v)
{
    os_ << key << '=' << percentEncode(v) << '\n';
}

void StateWriter::f64vec(const std::string& key,
                         const std::vector<double>& v)
{
    u64(key + ".n", v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        f64(key + "." + std::to_string(i), v[i]);
    }
}

void StateWriter::i64vec(const std::string& key,
                         const std::vector<long long>& v)
{
    u64(key + ".n", v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        i64(key + "." + std::to_string(i), v[i]);
    }
}

void StateWriter::u64vec(const std::string& key,
                         const std::vector<std::uint64_t>& v)
{
    u64(key + ".n", v.size());
    for (std::size_t i = 0; i < v.size(); ++i) {
        u64(key + "." + std::to_string(i), v[i]);
    }
}

StateReader::StateReader(const std::string& body)
{
    std::size_t pos = 0;
    while (pos < body.size()) {
        std::size_t eol = body.find('\n', pos);
        if (eol == std::string::npos) {
            eol = body.size();
        }
        const std::string line = body.substr(pos, eol - pos);
        pos = eol + 1;
        if (line.empty()) {
            continue;
        }
        const std::size_t eq = line.find('=');
        if (eq == std::string::npos) {
            throw std::runtime_error(
                "StateReader: line without '=': '" + line + "'");
        }
        fields_.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
}

const std::string& StateReader::take(const std::string& key)
{
    if (next_ >= fields_.size()) {
        failKey(key, "past end of snapshot");
    }
    const auto& field = fields_[next_];
    if (field.first != key) {
        failKey(key, "found '" + field.first + "' instead");
    }
    ++next_;
    return fields_[next_ - 1].second;
}

void StateReader::failKey(const std::string& key,
                          const std::string& why) const
{
    throw std::runtime_error("StateReader: reading '" + key + "': " +
                            why);
}

std::uint64_t StateReader::u64(const std::string& key)
{
    const std::string& v = take(key);
    if (v.empty()) {
        failKey(key, "empty value");
    }
    std::uint64_t out = 0;
    for (char c : v) {
        if (c < '0' || c > '9') {
            failKey(key, "non-digit in '" + v + "'");
        }
        out = out * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return out;
}

long long StateReader::i64(const std::string& key)
{
    const std::string& v = take(key);
    if (v.empty()) {
        failKey(key, "empty value");
    }
    const bool neg = v[0] == '-';
    long long out = 0;
    for (std::size_t i = neg ? 1 : 0; i < v.size(); ++i) {
        if (v[i] < '0' || v[i] > '9') {
            failKey(key, "non-digit in '" + v + "'");
        }
        out = out * 10 + (v[i] - '0');
    }
    return neg ? -out : out;
}

bool StateReader::boolean(const std::string& key)
{
    const std::string& v = take(key);
    if (v == "1") {
        return true;
    }
    if (v == "0") {
        return false;
    }
    failKey(key, "expected 0 or 1, got '" + v + "'");
}

double StateReader::f64(const std::string& key)
{
    const std::string& v = take(key);
    if (v.size() != 16) {
        failKey(key, "expected 16 hex digits, got '" + v + "'");
    }
    std::uint64_t bits = 0;
    for (char c : v) {
        const int nib = hexNibble(c);
        if (nib < 0) {
            failKey(key, "non-hex digit in '" + v + "'");
        }
        bits = (bits << 4) | static_cast<std::uint64_t>(nib);
    }
    return std::bit_cast<double>(bits);
}

std::string StateReader::str(const std::string& key)
{
    return percentDecode(take(key));
}

std::vector<double> StateReader::f64vec(const std::string& key)
{
    const std::uint64_t n = u64(key + ".n");
    std::vector<double> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(f64(key + "." + std::to_string(i)));
    }
    return out;
}

std::vector<long long> StateReader::i64vec(const std::string& key)
{
    const std::uint64_t n = u64(key + ".n");
    std::vector<long long> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(i64(key + "." + std::to_string(i)));
    }
    return out;
}

std::vector<std::uint64_t> StateReader::u64vec(const std::string& key)
{
    const std::uint64_t n = u64(key + ".n");
    std::vector<std::uint64_t> out;
    out.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        out.push_back(u64(key + "." + std::to_string(i)));
    }
    return out;
}

}  // namespace yukta::obs
