#ifndef YUKTA_OBS_ROLLUP_H_
#define YUKTA_OBS_ROLLUP_H_

/**
 * @file
 * Streaming, mergeable metric rollups for fleet-scale runs.
 *
 * A 1000-board fleet at 500 ms ticks produces far too many per-tick
 * events to materialize; instead each shard accumulates its own
 * MergeableHistogram / RunningStat instances (shared-nothing, no
 * atomics on the hot path) and the coordinator merges them in board
 * index order after the parallel phase. Merging is exact: a rollup
 * built from N shard-local instances is bit-identical to one built
 * serially from the same observation stream, because only counts and
 * compensated-order-free sums cross the merge boundary (bucket counts
 * are integers; sums are added in deterministic shard order).
 *
 * Unlike obs::Histogram (process-wide operational telemetry, atomic,
 * wall-clock friendly) these types are deterministic run *results*:
 * they carry simulated-time quantities only and participate in run
 * digests, so nothing here may read a clock (yukta-lint rule
 * wall-clock).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/stateio.h"

namespace yukta::obs {

/**
 * Fixed-bound streaming histogram that merges exactly. Bounds are
 * ascending upper bucket bounds; observations above the last bound
 * land in an implicit overflow bucket. Quantiles are resolved to the
 * conservative (upper) bucket bound, so they are deterministic and
 * merge-order independent.
 */
class MergeableHistogram
{
  public:
    MergeableHistogram() = default;

    /** @param bounds ascending upper bucket bounds (at least one). */
    explicit MergeableHistogram(std::vector<double> bounds);

    /**
     * @return a histogram with @p per_decade log-spaced buckets per
     * decade covering [lo, hi] (lo, hi > 0).
     */
    static MergeableHistogram logSpaced(double lo, double hi,
                                        std::size_t per_decade);

    /** Records one observation. */
    void observe(double v);

    /**
     * Adds @p other bucket-by-bucket.
     * @throws std::invalid_argument when the bounds differ.
     */
    void merge(const MergeableHistogram& other);

    /** @return total observations. */
    long long count() const { return count_; }

    /** @return sum of all observations. */
    double sum() const { return sum_; }

    /** @return smallest observation (0 when empty). */
    double minValue() const { return count_ > 0 ? min_ : 0.0; }

    /** @return largest observation (0 when empty). */
    double maxValue() const { return count_ > 0 ? max_ : 0.0; }

    /** @return arithmetic mean (0 when empty). */
    double mean() const
    {
        return count_ > 0 ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /**
     * @return the upper bound of the bucket containing the q-quantile
     * (q in [0, 1]); the exact recorded maximum for the overflow
     * bucket, 0 when empty. Conservative: never under-reports.
     */
    double quantile(double q) const;

    /** @return the bucket bounds. */
    const std::vector<double>& bounds() const { return bounds_; }

    /** @return per-bucket counts (bounds().size() + 1 entries). */
    const std::vector<long long>& bucketCounts() const { return counts_; }

    /**
     * @return this histogram as one canonical JSON object (counts,
     * sum, min/max, p50/p90/p99/p999); deterministic rendering via
     * canonicalNumber.
     */
    std::string toJson() const;

    /** Appends the full histogram state to @p w. */
    void save(StateWriter& w) const;

    /** Restores state written by save (replaces bounds and counts). */
    void load(StateReader& r);

  private:
    std::vector<double> bounds_;
    std::vector<long long> counts_;  ///< bounds_.size() + 1 entries.
    long long count_ = 0;
    double sum_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/** Mergeable count/sum/min/max accumulator for scalar series. */
struct RunningStat
{
    long long count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;

    /** Records one observation. */
    void add(double v);

    /** Adds @p other (deterministic when call order is fixed). */
    void merge(const RunningStat& other);

    /** @return arithmetic mean (0 when empty). */
    double mean() const
    {
        return count > 0 ? sum / static_cast<double>(count) : 0.0;
    }

    /** @return canonical JSON object for this stat. */
    std::string toJson() const;

    /** Appends the stat's fields to @p w. */
    void save(StateWriter& w) const;

    /** Restores state written by save. */
    void load(StateReader& r);
};

/**
 * FNV-1a over @p text; the fleet digests its deterministic metric
 * rendering with this to make "bit-identical for 1-vs-N workers"
 * checkable as one integer comparison.
 */
std::uint64_t fnv1a(const std::string& text);

}  // namespace yukta::obs

#endif  // YUKTA_OBS_ROLLUP_H_
