#include "obs/rollup.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "obs/trace.h"

namespace yukta::obs {

MergeableHistogram::MergeableHistogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0)
{
    if (bounds_.empty()) {
        throw std::invalid_argument(
            "MergeableHistogram needs at least one bound");
    }
    for (std::size_t i = 1; i < bounds_.size(); ++i) {
        if (!(bounds_[i] > bounds_[i - 1])) {
            throw std::invalid_argument(
                "MergeableHistogram bounds must ascend");
        }
    }
}

MergeableHistogram
MergeableHistogram::logSpaced(double lo, double hi, std::size_t per_decade)
{
    if (!(lo > 0.0) || !(hi > lo) || per_decade == 0) {
        throw std::invalid_argument(
            "logSpaced needs hi > lo > 0 and per_decade > 0");
    }
    const double decades = std::log10(hi / lo);
    const auto n = static_cast<std::size_t>(
        std::ceil(decades * static_cast<double>(per_decade)));
    std::vector<double> bounds;
    bounds.reserve(n + 1);
    const double step = 1.0 / static_cast<double>(per_decade);
    // Endpoints pinned exactly; interior points from one pow() each so
    // the grid is a pure function of (lo, hi, per_decade).
    bounds.push_back(lo);
    for (std::size_t i = 1; i < n; ++i) {
        bounds.push_back(
            lo * std::pow(10.0, static_cast<double>(i) * step));
    }
    bounds.push_back(hi);
    return MergeableHistogram(std::move(bounds));
}

void
MergeableHistogram::observe(double v)
{
    if (std::isnan(v)) {
        return;  // NaN never lands in a bucket; drop it deterministically.
    }
    const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
    counts_[static_cast<std::size_t>(it - bounds_.begin())] += 1;
    if (count_ == 0) {
        min_ = v;
        max_ = v;
    } else {
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }
    ++count_;
    sum_ += v;
}

void
MergeableHistogram::merge(const MergeableHistogram& other)
{
    if (bounds_ != other.bounds_) {
        throw std::invalid_argument(
            "MergeableHistogram::merge: bucket bounds differ");
    }
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        counts_[i] += other.counts_[i];
    }
    if (other.count_ > 0) {
        if (count_ == 0) {
            min_ = other.min_;
            max_ = other.max_;
        } else {
            min_ = std::min(min_, other.min_);
            max_ = std::max(max_, other.max_);
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double
MergeableHistogram::quantile(double q) const
{
    if (count_ == 0) {
        return 0.0;
    }
    q = std::clamp(q, 0.0, 1.0);
    const auto rank = static_cast<long long>(
        std::ceil(q * static_cast<double>(count_)));
    long long seen = 0;
    for (std::size_t i = 0; i < counts_.size(); ++i) {
        seen += counts_[i];
        if (seen >= rank) {
            // Overflow bucket has no upper bound: report the exact max.
            return i < bounds_.size() ? bounds_[i] : max_;
        }
    }
    return max_;
}

std::string
MergeableHistogram::toJson() const
{
    std::ostringstream os;
    os << "{\"count\":" << count_ << ",\"sum\":" << canonicalNumber(sum_)
       << ",\"min\":" << canonicalNumber(minValue())
       << ",\"max\":" << canonicalNumber(maxValue())
       << ",\"mean\":" << canonicalNumber(mean())
       << ",\"p50\":" << canonicalNumber(quantile(0.50))
       << ",\"p90\":" << canonicalNumber(quantile(0.90))
       << ",\"p99\":" << canonicalNumber(quantile(0.99))
       << ",\"p999\":" << canonicalNumber(quantile(0.999)) << "}";
    return os.str();
}

void
MergeableHistogram::save(StateWriter& w) const
{
    w.f64vec("hist.bounds", bounds_);
    w.i64vec("hist.counts", counts_);
    w.i64("hist.count", count_);
    w.f64("hist.sum", sum_);
    w.f64("hist.min", min_);
    w.f64("hist.max", max_);
}

void
MergeableHistogram::load(StateReader& r)
{
    bounds_ = r.f64vec("hist.bounds");
    counts_ = r.i64vec("hist.counts");
    if (counts_.size() != bounds_.size() + 1) {
        throw std::runtime_error(
            "MergeableHistogram::load: bucket count mismatch");
    }
    count_ = r.i64("hist.count");
    sum_ = r.f64("hist.sum");
    min_ = r.f64("hist.min");
    max_ = r.f64("hist.max");
}

void
RunningStat::add(double v)
{
    if (count == 0) {
        min = v;
        max = v;
    } else {
        min = std::min(min, v);
        max = std::max(max, v);
    }
    ++count;
    sum += v;
}

void
RunningStat::merge(const RunningStat& other)
{
    if (other.count > 0) {
        if (count == 0) {
            min = other.min;
            max = other.max;
        } else {
            min = std::min(min, other.min);
            max = std::max(max, other.max);
        }
    }
    count += other.count;
    sum += other.sum;
}

std::string
RunningStat::toJson() const
{
    std::ostringstream os;
    os << "{\"count\":" << count << ",\"sum\":" << canonicalNumber(sum)
       << ",\"min\":" << canonicalNumber(count > 0 ? min : 0.0)
       << ",\"max\":" << canonicalNumber(count > 0 ? max : 0.0)
       << ",\"mean\":" << canonicalNumber(mean()) << "}";
    return os.str();
}

void
RunningStat::save(StateWriter& w) const
{
    w.i64("stat.count", count);
    w.f64("stat.sum", sum);
    w.f64("stat.min", min);
    w.f64("stat.max", max);
}

void
RunningStat::load(StateReader& r)
{
    count = r.i64("stat.count");
    sum = r.f64("stat.sum");
    min = r.f64("stat.min");
    max = r.f64("stat.max");
}

std::uint64_t
fnv1a(const std::string& text)
{
    std::uint64_t h = 14695981039346656037ull;
    for (const char c : text) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 1099511628211ull;
    }
    return h;
}

}  // namespace yukta::obs
