#include "obs/trace_diff.h"

#include <sstream>

namespace yukta::obs {

namespace {

/** @return a divergence at @p index for identity-level mismatches. */
TraceDivergence
identityDivergence(std::size_t index, const TraceEvent& ev,
                   const std::string& field, std::string expected,
                   std::string actual)
{
    TraceDivergence d;
    d.event_index = index;
    d.tick = ev.tick();
    d.layer = ev.layer();
    d.kind = ev.kind();
    d.field = field;
    d.expected = std::move(expected);
    d.actual = std::move(actual);
    return d;
}

}  // namespace

std::optional<TraceDivergence>
diffTraces(const std::vector<TraceEvent>& expected,
           const std::vector<TraceEvent>& actual)
{
    std::size_t n = std::min(expected.size(), actual.size());
    for (std::size_t i = 0; i < n; ++i) {
        const TraceEvent& a = expected[i];
        const TraceEvent& b = actual[i];
        if (a.tick() != b.tick()) {
            return identityDivergence(i, a, "(tick)",
                                      std::to_string(a.tick()),
                                      std::to_string(b.tick()));
        }
        if (a.layer() != b.layer() || a.kind() != b.kind()) {
            return identityDivergence(i, a, "(event)",
                                      a.layer() + "/" + a.kind(),
                                      b.layer() + "/" + b.kind());
        }
        if (canonicalNumber(a.time()) != canonicalNumber(b.time())) {
            return identityDivergence(i, a, "(time)",
                                      canonicalNumber(a.time()),
                                      canonicalNumber(b.time()));
        }
        const auto& fa = a.fields();
        const auto& fb = b.fields();
        std::size_t nf = std::min(fa.size(), fb.size());
        for (std::size_t j = 0; j < nf; ++j) {
            if (fa[j].first != fb[j].first) {
                return identityDivergence(i, a, "(field-name)",
                                          fa[j].first, fb[j].first);
            }
            if (fa[j].second != fb[j].second) {
                return identityDivergence(i, a, fa[j].first, fa[j].second,
                                          fb[j].second);
            }
        }
        if (fa.size() != fb.size()) {
            return identityDivergence(
                i, a, "(field-count)", std::to_string(fa.size()) + " fields",
                std::to_string(fb.size()) + " fields");
        }
    }
    if (expected.size() != actual.size()) {
        TraceDivergence d;
        d.event_index = n;
        const TraceEvent& ref =
            expected.size() > n ? expected[n] : actual[n];
        d.tick = ref.tick();
        d.layer = ref.layer();
        d.kind = ref.kind();
        d.field = "(event-count)";
        d.expected = std::to_string(expected.size()) + " events";
        d.actual = std::to_string(actual.size()) + " events";
        return d;
    }
    return std::nullopt;
}

std::optional<TraceDivergence>
diffJsonlStreams(std::istream& expected, std::istream& actual)
{
    std::optional<std::vector<TraceEvent>> a = readJsonlTrace(expected);
    std::optional<std::vector<TraceEvent>> b = readJsonlTrace(actual);
    if (!a || !b) {
        TraceDivergence d;
        d.field = "(parse)";
        d.expected = a ? "parsed" : "unparseable expected trace";
        d.actual = b ? "parsed" : "unparseable actual trace";
        return d;
    }
    return diffTraces(*a, *b);
}

std::string
describeDivergence(const TraceDivergence& d)
{
    std::ostringstream os;
    os << "traces diverge first at tick " << d.tick << " (event #"
       << d.event_index << ", " << d.layer << "/" << d.kind << ")";
    if (!d.field.empty()) {
        os << ", field '" << d.field << "'";
    }
    os << ": expected " << d.expected << ", got " << d.actual;
    return os.str();
}

}  // namespace yukta::obs
