#include "obs/trace.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <map>
#include <ostream>
#include <sstream>

namespace yukta::obs {

std::string
canonicalNumber(double v)
{
    if (std::isnan(v)) {
        return "\"nan\"";
    }
    if (std::isinf(v)) {
        return v > 0.0 ? "\"inf\"" : "\"-inf\"";
    }
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.17g", v);
    return buf;
}

namespace {

/** JSON-escapes @p s (quotes, backslashes, control characters). */
std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

}  // namespace

TraceEvent::TraceEvent(int tick, double time, std::string layer,
                       std::string kind)
    : tick_(tick), time_(time), layer_(std::move(layer)),
      kind_(std::move(kind))
{
}

TraceEvent&
TraceEvent::num(const std::string& key, double v)
{
    fields_.emplace_back(key, canonicalNumber(v));
    return *this;
}

TraceEvent&
TraceEvent::integer(const std::string& key, long long v)
{
    fields_.emplace_back(key, std::to_string(v));
    return *this;
}

TraceEvent&
TraceEvent::str(const std::string& key, const std::string& v)
{
    std::string quoted;
    quoted.reserve(v.size() + 2);
    quoted.push_back('"');
    quoted.append(jsonEscape(v));
    quoted.push_back('"');
    fields_.emplace_back(key, std::move(quoted));
    return *this;
}

TraceEvent&
TraceEvent::vec(const std::string& key, const std::vector<double>& v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) {
            out += ",";
        }
        out += canonicalNumber(v[i]);
    }
    out += "]";
    fields_.emplace_back(key, std::move(out));
    return *this;
}

TraceEvent&
TraceEvent::flags(const std::string& key, const std::vector<int>& v)
{
    std::string out = "[";
    for (std::size_t i = 0; i < v.size(); ++i) {
        if (i > 0) {
            out += ",";
        }
        out += std::to_string(v[i]);
    }
    out += "]";
    fields_.emplace_back(key, std::move(out));
    return *this;
}

std::string
TraceEvent::toJsonLine() const
{
    std::string out;
    out.append("{\"tick\":");
    out.append(std::to_string(tick_));
    out.append(",\"time\":");
    out.append(canonicalNumber(time_));
    out.append(",\"layer\":\"");
    out.append(jsonEscape(layer_));
    out.append("\",\"kind\":\"");
    out.append(jsonEscape(kind_));
    out.append("\",\"f\":{");
    for (std::size_t i = 0; i < fields_.size(); ++i) {
        if (i > 0) {
            out.push_back(',');
        }
        out.push_back('"');
        out.append(jsonEscape(fields_[i].first));
        out.append("\":");
        out.append(fields_[i].second);
    }
    out.append("}}");
    return out;
}

namespace {

/**
 * Minimal scanner for the JSON subset toJsonLine emits. Values are
 * returned as raw text (numbers/arrays verbatim, strings unescaped
 * separately), which keeps diffing byte-exact.
 */
class JsonScanner
{
  public:
    explicit JsonScanner(const std::string& s) : s_(s) {}

    /** Consumes @p c (after whitespace); @return false on mismatch. */
    bool expect(char c)
    {
        skipWs();
        if (i_ < s_.size() && s_[i_] == c) {
            ++i_;
            return true;
        }
        return false;
    }

    /** @return the next character without consuming it ('\0' at end). */
    char peek()
    {
        skipWs();
        return i_ < s_.size() ? s_[i_] : '\0';
    }

    /** Parses a quoted string into @p out (unescaping). */
    bool parseString(std::string* out)
    {
        if (!expect('"')) {
            return false;
        }
        out->clear();
        while (i_ < s_.size() && s_[i_] != '"') {
            char c = s_[i_++];
            if (c == '\\' && i_ < s_.size()) {
                char e = s_[i_++];
                switch (e) {
                  case 'n':
                    out->push_back('\n');
                    break;
                  case 't':
                    out->push_back('\t');
                    break;
                  case 'r':
                    out->push_back('\r');
                    break;
                  case 'u': {
                    if (i_ + 4 > s_.size()) {
                        return false;
                    }
                    unsigned code = 0;
                    for (int k = 0; k < 4; ++k) {
                        char h = s_[i_++];
                        code <<= 4;
                        if (h >= '0' && h <= '9') {
                            code |= static_cast<unsigned>(h - '0');
                        } else if (h >= 'a' && h <= 'f') {
                            code |= static_cast<unsigned>(h - 'a' + 10);
                        } else {
                            return false;
                        }
                    }
                    out->push_back(static_cast<char>(code));
                    break;
                  }
                  default:
                    out->push_back(e);
                }
            } else {
                out->push_back(c);
            }
        }
        return expect('"');
    }

    /**
     * Captures one JSON value (number, string, or flat array) as raw
     * text, exactly as it appears in the input.
     */
    bool parseRawValue(std::string* out)
    {
        skipWs();
        std::size_t start = i_;
        if (i_ >= s_.size()) {
            return false;
        }
        if (s_[i_] == '"') {
            std::string ignored;
            if (!parseString(&ignored)) {
                return false;
            }
        } else if (s_[i_] == '[') {
            int depth = 0;
            bool in_string = false;
            while (i_ < s_.size()) {
                char c = s_[i_++];
                if (in_string) {
                    if (c == '\\') {
                        ++i_;
                    } else if (c == '"') {
                        in_string = false;
                    }
                } else if (c == '"') {
                    in_string = true;
                } else if (c == '[') {
                    ++depth;
                } else if (c == ']') {
                    if (--depth == 0) {
                        break;
                    }
                }
            }
            if (depth != 0) {
                return false;
            }
        } else {
            while (i_ < s_.size() && s_[i_] != ',' && s_[i_] != '}' &&
                   s_[i_] != ']') {
                ++i_;
            }
        }
        *out = s_.substr(start, i_ - start);
        return !out->empty();
    }

  private:
    void skipWs()
    {
        while (i_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[i_])) != 0) {
            ++i_;
        }
    }

    const std::string& s_;
    std::size_t i_ = 0;
};

}  // namespace

std::optional<TraceEvent>
TraceEvent::fromJsonLine(const std::string& line)
{
    JsonScanner sc(line);
    if (!sc.expect('{')) {
        return std::nullopt;
    }
    TraceEvent ev;
    bool first = true;
    bool saw_tick = false;
    bool saw_time = false;
    bool saw_layer = false;
    bool saw_kind = false;
    while (true) {
        if (sc.peek() == '}') {
            sc.expect('}');
            break;
        }
        if (!first && !sc.expect(',')) {
            return std::nullopt;
        }
        first = false;
        std::string key;
        if (!sc.parseString(&key) || !sc.expect(':')) {
            return std::nullopt;
        }
        if (key == "tick") {
            std::string raw;
            if (!sc.parseRawValue(&raw)) {
                return std::nullopt;
            }
            ev.tick_ = std::atoi(raw.c_str());
            saw_tick = true;
        } else if (key == "time") {
            std::string raw;
            if (!sc.parseRawValue(&raw)) {
                return std::nullopt;
            }
            ev.time_ = std::atof(raw.c_str());
            saw_time = true;
        } else if (key == "layer") {
            if (!sc.parseString(&ev.layer_)) {
                return std::nullopt;
            }
            saw_layer = true;
        } else if (key == "kind") {
            if (!sc.parseString(&ev.kind_)) {
                return std::nullopt;
            }
            saw_kind = true;
        } else if (key == "f") {
            if (!sc.expect('{')) {
                return std::nullopt;
            }
            bool ffirst = true;
            while (true) {
                if (sc.peek() == '}') {
                    sc.expect('}');
                    break;
                }
                if (!ffirst && !sc.expect(',')) {
                    return std::nullopt;
                }
                ffirst = false;
                std::string fkey;
                std::string fval;
                if (!sc.parseString(&fkey) || !sc.expect(':') ||
                    !sc.parseRawValue(&fval)) {
                    return std::nullopt;
                }
                ev.fields_.emplace_back(std::move(fkey), std::move(fval));
            }
        } else {
            std::string ignored;
            if (!sc.parseRawValue(&ignored)) {
                return std::nullopt;
            }
        }
    }
    if (!saw_tick || !saw_time || !saw_layer || !saw_kind) {
        return std::nullopt;
    }
    return ev;
}

TraceSink::TraceSink(std::string run_id) : run_id_(std::move(run_id)) {}

void
TraceSink::beginTick(int tick, double sim_time)
{
    std::lock_guard<std::mutex> lock(mutex_);
    tick_ = tick;
    time_ = sim_time;
}

TraceEvent
TraceSink::makeEvent(const std::string& layer, const std::string& kind) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return TraceEvent(tick_, time_, layer, kind);
}

void
TraceSink::record(TraceEvent event)
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.push_back(std::move(event));
}

std::size_t
TraceSink::eventCount() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_.size();
}

std::vector<TraceEvent>
TraceSink::events() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return events_;
}

void
TraceSink::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    events_.clear();
    tick_ = 0;
    time_ = 0.0;
}

void
TraceSink::writeJsonl(std::ostream& os) const
{
    std::vector<TraceEvent> snapshot = events();
    os << "{\"yukta_trace\":1,\"run\":\"" << jsonEscape(run_id_) << "\"}\n";
    for (const TraceEvent& ev : snapshot) {
        os << ev.toJsonLine() << "\n";
    }
}

void
TraceSink::writeChrome(std::ostream& os) const
{
    std::vector<TraceEvent> snapshot = events();
    // Stable per-layer thread ids, named via metadata events, so every
    // layer gets its own timeline row in the viewer.
    std::map<std::string, int> tids;
    for (const TraceEvent& ev : snapshot) {
        tids.emplace(ev.layer(), 0);
    }
    int next = 1;
    for (auto& [layer, tid] : tids) {
        tid = next++;
    }
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    for (const auto& [layer, tid] : tids) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(layer) << "\"}}";
    }
    for (const TraceEvent& ev : snapshot) {
        os << ",{\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":"
           << tids[ev.layer()] << ",\"ts\":"
           << canonicalNumber(ev.time() * 1e6) << ",\"name\":\""
           << jsonEscape(ev.layer()) << "/" << jsonEscape(ev.kind())
           << "\",\"args\":{\"tick\":" << ev.tick();
        for (const auto& [key, value] : ev.fields()) {
            os << ",\"" << jsonEscape(key) << "\":" << value;
        }
        os << "}}";
    }
    os << "]}\n";
}

std::optional<std::vector<TraceEvent>>
readJsonlTrace(std::istream& is, std::string* run_id)
{
    std::vector<TraceEvent> events;
    std::string line;
    bool first = true;
    while (std::getline(is, line)) {
        if (line.empty()) {
            continue;
        }
        if (first && line.find("\"yukta_trace\"") != std::string::npos) {
            first = false;
            if (run_id != nullptr) {
                std::size_t pos = line.find("\"run\":\"");
                if (pos != std::string::npos) {
                    std::size_t begin = pos + 7;
                    std::size_t end = line.find('"', begin);
                    if (end != std::string::npos) {
                        *run_id = line.substr(begin, end - begin);
                    }
                }
            }
            continue;
        }
        first = false;
        std::optional<TraceEvent> ev = TraceEvent::fromJsonLine(line);
        if (!ev) {
            return std::nullopt;
        }
        events.push_back(std::move(*ev));
    }
    return events;
}

}  // namespace yukta::obs
