#ifndef YUKTA_OBS_TRACE_DIFF_H_
#define YUKTA_OBS_TRACE_DIFF_H_

/**
 * @file
 * Field-by-field trace comparison for the golden-trace regression
 * suite (tests/golden/): finds the *first* divergence between two
 * traces — in event order, which is tick order — and describes it
 * precisely (tick, layer, kind, field, both values), so a regression
 * report points at the first control period where behavior changed
 * rather than at a wall of differing lines.
 */

#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace yukta::obs {

/** The first point where two traces disagree. */
struct TraceDivergence
{
    std::size_t event_index = 0;  ///< Index into the event stream.
    int tick = 0;                 ///< Control period of the event.
    std::string layer;            ///< Layer of the diverging event.
    std::string kind;             ///< Kind of the diverging event.
    std::string field;  ///< Field name; "" = identity/shape mismatch.
    std::string expected;  ///< Value (or description) in trace A.
    std::string actual;    ///< Value (or description) in trace B.
};

/**
 * Compares @p expected and @p actual event-by-event, each event
 * field-by-field. @return the first divergence, or std::nullopt when
 * the traces are identical.
 */
std::optional<TraceDivergence>
diffTraces(const std::vector<TraceEvent>& expected,
           const std::vector<TraceEvent>& actual);

/**
 * Reads two JSONL traces (TraceSink::writeJsonl format) and diffs
 * them. Unparseable input is reported as a divergence at the failing
 * side's first bad line rather than an exception.
 */
std::optional<TraceDivergence> diffJsonlStreams(std::istream& expected,
                                                std::istream& actual);

/** @return @p d as a one-paragraph human-readable report. */
std::string describeDivergence(const TraceDivergence& d);

}  // namespace yukta::obs

#endif  // YUKTA_OBS_TRACE_DIFF_H_
