#ifndef YUKTA_OBS_STATEIO_H_
#define YUKTA_OBS_STATEIO_H_

/**
 * @file
 * Bit-exact state snapshot encoding for checkpoint/resume.
 *
 * A checkpoint is a flat, strictly ordered `key=value` text stream.
 * Every stateful component appends its fields through StateWriter and
 * reads them back through StateReader in the same order; a mismatch
 * (missing field, renamed key, version skew) fails loudly with the
 * offending key instead of silently desynchronizing the simulation.
 *
 * Doubles are encoded as their 16-hex-digit IEEE-754 bit pattern, so
 * a round trip is exact to the bit -- the property the fleet's
 * "run-to-T equals run-to-T/2 + restore" digest gate rests on.
 * Strings are percent-encoded (%, =, CR, LF), which is enough to
 * round-trip the stream representations of <random> engines and
 * distributions.
 *
 * This lives in obs (the dependency-free base layer) so every layer
 * from platform to fleet can serialize itself without new layer
 * edges.
 */

#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

namespace yukta::obs {

/** Appends typed key=value fields to a snapshot body. */
class StateWriter
{
  public:
    /** Writes an unsigned integer field. */
    void u64(const std::string& key, std::uint64_t v);

    /** Writes a signed integer field. */
    void i64(const std::string& key, long long v);

    /** Writes a boolean field (encoded 0/1). */
    void boolean(const std::string& key, bool v);

    /** Writes a double as its exact IEEE-754 bit pattern. */
    void f64(const std::string& key, double v);

    /** Writes a percent-encoded string field. */
    void str(const std::string& key, const std::string& v);

    /** Writes @p key.n then one f64 field per element. */
    void f64vec(const std::string& key, const std::vector<double>& v);

    /** Writes @p key.n then one i64 field per element. */
    void i64vec(const std::string& key, const std::vector<long long>& v);

    /** Writes @p key.n then one u64 field per element. */
    void u64vec(const std::string& key,
                const std::vector<std::uint64_t>& v);

    /**
     * Serializes a <random> engine or distribution through its stream
     * operator (libstdc++ round-trips both exactly).
     */
    template <typename T>
    void rng(const std::string& key, const T& engine)
    {
        std::ostringstream os;
        os << engine;
        str(key, os.str());
    }

    /** @return the accumulated snapshot body. */
    std::string dump() const { return os_.str(); }

  private:
    std::ostringstream os_;
};

/**
 * Strictly sequential reader over a StateWriter dump. Each accessor
 * consumes the next line and requires its key to match.
 * @throws std::runtime_error on key mismatch, malformed values, or
 * reading past the end.
 */
class StateReader
{
  public:
    /** Parses @p body (a StateWriter dump) into ordered fields. */
    explicit StateReader(const std::string& body);

    /** Reads the next field as an unsigned integer. */
    std::uint64_t u64(const std::string& key);

    /** Reads the next field as a signed integer. */
    long long i64(const std::string& key);

    /** Reads the next field as a boolean. */
    bool boolean(const std::string& key);

    /** Reads the next field as an exact double bit pattern. */
    double f64(const std::string& key);

    /** Reads the next field as a percent-decoded string. */
    std::string str(const std::string& key);

    /** Reads a f64vec written by StateWriter::f64vec. */
    std::vector<double> f64vec(const std::string& key);

    /** Reads an i64vec written by StateWriter::i64vec. */
    std::vector<long long> i64vec(const std::string& key);

    /** Reads a u64vec written by StateWriter::u64vec. */
    std::vector<std::uint64_t> u64vec(const std::string& key);

    /** Restores a <random> engine or distribution from its field. */
    template <typename T>
    void rng(const std::string& key, T& engine)
    {
        std::istringstream is(str(key));
        is >> engine;
        if (is.fail()) {
            failKey(key, "unparsable rng state");
        }
    }

    /** @return true when every field has been consumed. */
    bool atEnd() const { return next_ == fields_.size(); }

    /** @return fields consumed so far (diagnostics). */
    std::size_t consumed() const { return next_; }

  private:
    std::vector<std::pair<std::string, std::string>> fields_;
    std::size_t next_ = 0;

    const std::string& take(const std::string& key);
    [[noreturn]] void failKey(const std::string& key,
                              const std::string& why) const;
};

/** @return @p raw with %, =, CR, and LF percent-encoded. */
std::string percentEncode(const std::string& raw);

/**
 * @return the percent-decoded form of @p enc.
 * @throws std::runtime_error on a malformed escape.
 */
std::string percentDecode(const std::string& enc);

}  // namespace yukta::obs

#endif  // YUKTA_OBS_STATEIO_H_
