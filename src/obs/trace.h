#ifndef YUKTA_OBS_TRACE_H_
#define YUKTA_OBS_TRACE_H_

/**
 * @file
 * Deterministic per-tick structured tracing for the controller stack.
 *
 * A TraceSink accumulates TraceEvents keyed by (tick, layer, kind) —
 * never by wall clock — so the trace of a run is a pure function of
 * its configuration: bit-identical across machines, worker counts,
 * and repetitions. Events hold an *ordered* list of fields whose
 * values are pre-rendered canonical JSON fragments (numbers via
 * "%.17g", so every double round-trips exactly). Determinism rules
 * are documented in DESIGN.md §9; the golden-trace regression suite
 * (tests/golden/) depends on them.
 *
 * Writers: JSONL (one event per line, the canonical diffable form)
 * and Chrome trace_event JSON (chrome://tracing / Perfetto timeline
 * viewing; timestamps are simulated microseconds).
 */

#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace yukta::obs {

/**
 * @return @p v rendered with enough digits ("%.17g") that parsing the
 * result recovers the exact double; non-finite values render as the
 * JSON strings "nan" / "inf" / "-inf".
 */
std::string canonicalNumber(double v);

/** One structured trace event: identity plus ordered fields. */
class TraceEvent
{
  public:
    TraceEvent() = default;

    /** Builds an event at (@p tick, @p time) for @p layer / @p kind. */
    TraceEvent(int tick, double time, std::string layer, std::string kind);

    /** Appends a double field (canonical rendering). */
    TraceEvent& num(const std::string& key, double v);

    /** Appends an integer field. */
    TraceEvent& integer(const std::string& key, long long v);

    /** Appends a string field (JSON-escaped on output). */
    TraceEvent& str(const std::string& key, const std::string& v);

    /** Appends a numeric-array field (canonical rendering). */
    TraceEvent& vec(const std::string& key, const std::vector<double>& v);

    /** Appends a 0/1 flag-array field. */
    TraceEvent& flags(const std::string& key, const std::vector<int>& v);

    /** Identity accessors. */
    int tick() const { return tick_; }
    double time() const { return time_; }
    const std::string& layer() const { return layer_; }
    const std::string& kind() const { return kind_; }

    /** Ordered (key, rendered JSON value) pairs. */
    const std::vector<std::pair<std::string, std::string>>& fields() const
    {
        return fields_;
    }

    /** @return this event as one JSON object (no trailing newline). */
    std::string toJsonLine() const;

    /**
     * Parses a line produced by toJsonLine. @return std::nullopt on
     * malformed input (field values are kept as raw JSON text, so a
     * parse → serialize round trip is byte-identical).
     */
    static std::optional<TraceEvent> fromJsonLine(const std::string& line);

  private:
    int tick_ = 0;
    double time_ = 0.0;
    std::string layer_;
    std::string kind_;
    std::vector<std::pair<std::string, std::string>> fields_;
};

/**
 * Collects the events of one run. Thread-safe (a mutex guards the
 * event list), though a run's control loop is single-threaded; the
 * lock exists so sweep-level consumers may snapshot a live sink.
 */
class TraceSink
{
  public:
    /** @param run_id stable identity stamped into the trace header. */
    explicit TraceSink(std::string run_id);

    /** Sets the (tick, simulated time) context for following events. */
    void beginTick(int tick, double sim_time);

    /** @return an event at the current tick for @p layer / @p kind. */
    TraceEvent makeEvent(const std::string& layer,
                         const std::string& kind) const;

    /** Appends @p event to the trace. */
    void record(TraceEvent event);

    /** @return the run identity given at construction. */
    const std::string& runId() const { return run_id_; }

    /** @return the number of recorded events. */
    std::size_t eventCount() const;

    /** @return a snapshot copy of all recorded events. */
    std::vector<TraceEvent> events() const;

    /** Discards all recorded events and resets the tick context. */
    void clear();

    /** Writes the trace as JSONL (header line, then one event/line). */
    void writeJsonl(std::ostream& os) const;

    /** Writes the trace in Chrome trace_event JSON format. */
    void writeChrome(std::ostream& os) const;

  private:
    std::string run_id_;
    int tick_ = 0;
    double time_ = 0.0;
    mutable std::mutex mutex_;
    std::vector<TraceEvent> events_;
};

/**
 * Reads a JSONL trace written by TraceSink::writeJsonl from @p is.
 * @param run_id receives the header identity when non-null.
 * @return the events, or std::nullopt when a line fails to parse.
 */
std::optional<std::vector<TraceEvent>>
readJsonlTrace(std::istream& is, std::string* run_id = nullptr);

}  // namespace yukta::obs

#endif  // YUKTA_OBS_TRACE_H_
