#ifndef YUKTA_OBS_METRICS_H_
#define YUKTA_OBS_METRICS_H_

/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * histograms with lock-free hot paths (atomics) and a mutex only on
 * first registration. Unlike trace events (obs/trace.h), metrics may
 * carry wall-clock quantities — they are operational telemetry about
 * the *runner process* (tick latency, cache hit rate, retries), never
 * part of a run's deterministic trace. Snapshots are name-sorted so
 * their rendering is stable.
 */

#include <atomic>
#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace yukta::obs {

/** Monotonically increasing integer metric. */
class Counter
{
  public:
    /** Adds @p delta (default 1). */
    void add(long long delta = 1)
    {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }

    /** @return the current count. */
    long long value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<long long> value_{0};
};

/** Last-write-wins floating-point metric. */
class Gauge
{
  public:
    /** Sets the gauge to @p v. */
    void set(double v) { value_.store(v, std::memory_order_relaxed); }

    /** @return the current value. */
    double value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<double> value_{0.0};
};

/** Fixed-bucket histogram (bounds set at registration). */
class Histogram
{
  public:
    /**
     * @param bounds ascending upper bucket bounds; an implicit
     * overflow bucket catches everything above the last bound.
     */
    explicit Histogram(std::vector<double> bounds);

    /** Records one observation. */
    void observe(double v);

    /** @return total observations. */
    long long count() const
    {
        return count_.load(std::memory_order_relaxed);
    }

    /** @return sum of all observations. */
    double sum() const { return sum_.load(std::memory_order_relaxed); }

    /** @return the bucket bounds given at construction. */
    const std::vector<double>& bounds() const { return bounds_; }

    /** @return per-bucket counts (bounds().size() + 1 entries). */
    std::vector<long long> bucketCounts() const;

  private:
    std::vector<double> bounds_;
    std::unique_ptr<std::atomic<long long>[]> buckets_;
    std::atomic<long long> count_{0};
    std::atomic<double> sum_{0.0};
};

/** One rendered metric in a snapshot. */
struct MetricSample
{
    std::string name;
    std::string type;   ///< "counter" | "gauge" | "histogram".
    double value = 0.0; ///< Count / gauge value / histogram sum.
    long long count = 0;  ///< Histogram observation count.
};

/** Named metric registry; instruments are created on first use. */
class MetricsRegistry
{
  public:
    /** @return the counter named @p name (created on first use). */
    Counter& counter(const std::string& name);

    /** @return the gauge named @p name (created on first use). */
    Gauge& gauge(const std::string& name);

    /**
     * @return the histogram named @p name; @p bounds applies only on
     * first use (later calls return the existing instrument).
     */
    Histogram& histogram(const std::string& name,
                         std::vector<double> bounds = {});

    /** @return a name-sorted snapshot of every registered metric. */
    std::vector<MetricSample> snapshot() const;

    /** @return the snapshot rendered as one JSON object. */
    std::string snapshotJson() const;

    /** Drops every registered instrument (tests only). */
    void clear();

  private:
    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/** @return the process-wide registry. */
MetricsRegistry& globalMetrics();

}  // namespace yukta::obs

#endif  // YUKTA_OBS_METRICS_H_
