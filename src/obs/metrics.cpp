#include "obs/metrics.h"

#include <algorithm>

#include "obs/trace.h"

namespace yukta::obs {

namespace {

/** CAS-loop add for atomic doubles (portable pre-C++20-TS targets). */
void
atomicAdd(std::atomic<double>& target, double delta)
{
    double cur = target.load(std::memory_order_relaxed);
    while (!target.compare_exchange_weak(cur, cur + delta,
                                         std::memory_order_relaxed)) {
    }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty()) {
        // Default: a wall-time-friendly ladder (seconds).
        bounds_ = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0};
    }
    std::sort(bounds_.begin(), bounds_.end());
    buckets_ =
        std::make_unique<std::atomic<long long>[]>(bounds_.size() + 1);
    for (std::size_t i = 0; i <= bounds_.size(); ++i) {
        buckets_[i].store(0, std::memory_order_relaxed);
    }
}

void
Histogram::observe(double v)
{
    std::size_t i =
        static_cast<std::size_t>(std::upper_bound(bounds_.begin(),
                                                  bounds_.end(), v) -
                                 bounds_.begin());
    buckets_[i].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    atomicAdd(sum_, v);
}

std::vector<long long>
Histogram::bucketCounts() const
{
    std::vector<long long> out(bounds_.size() + 1);
    for (std::size_t i = 0; i < out.size(); ++i) {
        out[i] = buckets_[i].load(std::memory_order_relaxed);
    }
    return out;
}

Counter&
MetricsRegistry::counter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = counters_[name];
    if (!slot) {
        slot = std::make_unique<Counter>();
    }
    return *slot;
}

Gauge&
MetricsRegistry::gauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = gauges_[name];
    if (!slot) {
        slot = std::make_unique<Gauge>();
    }
    return *slot;
}

Histogram&
MetricsRegistry::histogram(const std::string& name,
                           std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto& slot = histograms_[name];
    if (!slot) {
        slot = std::make_unique<Histogram>(std::move(bounds));
    }
    return *slot;
}

std::vector<MetricSample>
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    out.reserve(counters_.size() + gauges_.size() + histograms_.size());
    for (const auto& [name, c] : counters_) {
        MetricSample s;
        s.name = name;
        s.type = "counter";
        s.value = static_cast<double>(c->value());
        s.count = c->value();
        out.push_back(std::move(s));
    }
    for (const auto& [name, g] : gauges_) {
        MetricSample s;
        s.name = name;
        s.type = "gauge";
        s.value = g->value();
        out.push_back(std::move(s));
    }
    for (const auto& [name, h] : histograms_) {
        MetricSample s;
        s.name = name;
        s.type = "histogram";
        s.value = h->sum();
        s.count = h->count();
        out.push_back(std::move(s));
    }
    std::sort(out.begin(), out.end(),
              [](const MetricSample& a, const MetricSample& b) {
                  return a.name < b.name;
              });
    return out;
}

std::string
MetricsRegistry::snapshotJson() const
{
    std::vector<MetricSample> samples = snapshot();
    std::string out = "{";
    for (std::size_t i = 0; i < samples.size(); ++i) {
        if (i > 0) {
            out += ",";
        }
        const MetricSample& s = samples[i];
        out += "\"" + s.name + "\":{\"type\":\"" + s.type +
               "\",\"value\":" + canonicalNumber(s.value);
        if (s.type == "histogram") {
            out += ",\"count\":" + std::to_string(s.count);
        }
        out += "}";
    }
    out += "}";
    return out;
}

void
MetricsRegistry::clear()
{
    std::lock_guard<std::mutex> lock(mutex_);
    counters_.clear();
    gauges_.clear();
    histograms_.clear();
}

MetricsRegistry&
globalMetrics()
{
    // Deliberate leaked process-wide singleton: metrics snapshots are
    // documented as the one wall-clock-adjacent output, and the leak
    // sidesteps destruction-order races at exit.
    // yukta-audit: allow(static-state)
    static MetricsRegistry* registry = new MetricsRegistry();
    return *registry;
}

}  // namespace yukta::obs
