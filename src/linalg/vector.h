#ifndef YUKTA_LINALG_VECTOR_H_
#define YUKTA_LINALG_VECTOR_H_

/**
 * @file
 * Thin dense vector type; interoperates with Matrix (mat * vec).
 */

#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/matrix.h"

namespace yukta::linalg {

/** Dense vector of doubles with elementwise arithmetic. */
class Vector
{
  public:
    Vector() = default;

    /** Creates a vector of @p n entries, all equal to @p fill. */
    explicit Vector(std::size_t n, double fill = 0.0) : data_(n, fill) {}

    /** Creates a vector from an initializer list of entries. */
    Vector(std::initializer_list<double> init) : data_(init) {}

    /** Wraps an existing std::vector. */
    explicit Vector(std::vector<double> data) : data_(std::move(data)) {}

    /** @return a vector of @p n zeros. */
    static Vector zeros(std::size_t n) { return Vector(n, 0.0); }

    /** @return a vector of @p n ones. */
    static Vector ones(std::size_t n) { return Vector(n, 1.0); }

    /** Size accessors. */
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    double& operator[](std::size_t i) { return data_[i]; }
    double operator[](std::size_t i) const { return data_[i]; }

    /** Bounds-checked element access. */
    double& at(std::size_t i) { return data_.at(i); }
    double at(std::size_t i) const { return data_.at(i); }

    /** Direct access to the underlying storage. */
    const std::vector<double>& raw() const { return data_; }
    std::vector<double>& raw() { return data_; }

    Vector& operator+=(const Vector& rhs);
    Vector& operator-=(const Vector& rhs);
    Vector& operator*=(double s);

    /** @return the Euclidean norm. */
    double norm2() const;

    /** @return the largest absolute entry (0 for empty). */
    double maxAbs() const;

    /** @return dot product with @p rhs. */
    double dot(const Vector& rhs) const;

    /** @return this vector as an n x 1 matrix. */
    Matrix asColumn() const;

    /** @return this vector as a 1 x n matrix. */
    Matrix asRow() const;

    /** @return entries [begin, begin+len) as a new vector. */
    Vector segment(std::size_t begin, std::size_t len) const;

    /** @return true when entries differ from @p rhs by at most @p tol. */
    bool isApprox(const Vector& rhs, double tol = 1e-9) const;

    /** @return true when no entry is NaN or infinite. */
    bool allFinite() const
    {
        for (double v : data_) {
            if (!std::isfinite(v)) {
                return false;
            }
        }
        return true;
    }

  private:
    std::vector<double> data_;
};

Vector operator+(Vector lhs, const Vector& rhs);
Vector operator-(Vector lhs, const Vector& rhs);
Vector operator*(double s, Vector v);
Vector operator*(Vector v, double s);

/** Matrix-vector product. */
Vector operator*(const Matrix& m, const Vector& v);

/** Concatenates two vectors. */
Vector concat(const Vector& lhs, const Vector& rhs);

/** @return the first column of @p m as a Vector (m must be n x 1). */
Vector toVector(const Matrix& m);

/** YUKTA_CHECK_FINITE customization point (see core/contracts.h). */
inline bool yuktaAllFinite(const Vector& v) { return v.allFinite(); }

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_VECTOR_H_
