#include "linalg/matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) {
            throw std::invalid_argument("Matrix: ragged initializer list");
        }
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

Matrix
Matrix::identity(std::size_t n)
{
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = 1.0;
    }
    return m;
}

Matrix
Matrix::zeros(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols, 0.0);
}

Matrix
Matrix::ones(std::size_t rows, std::size_t cols)
{
    return Matrix(rows, cols, 1.0);
}

Matrix
Matrix::diag(const std::vector<double>& d)
{
    Matrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        m(i, i) = d[i];
    }
    return m;
}

double&
Matrix::operator()(std::size_t r, std::size_t c)
{
    YUKTA_REQUIRE(r < rows_ && c < cols_, "Matrix(", rows_, "x", cols_,
                  ") index (", r, ",", c, ")");
    return data_[r * cols_ + c];
}

double
Matrix::operator()(std::size_t r, std::size_t c) const
{
    YUKTA_REQUIRE(r < rows_ && c < cols_, "Matrix(", rows_, "x", cols_,
                  ") index (", r, ",", c, ")");
    return data_[r * cols_ + c];
}

Matrix&
Matrix::operator+=(const Matrix& rhs)
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("Matrix+=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += rhs.data_[i];
    }
    return *this;
}

Matrix&
Matrix::operator-=(const Matrix& rhs)
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("Matrix-=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= rhs.data_[i];
    }
    return *this;
}

Matrix&
Matrix::operator*=(double s)
{
    for (double& v : data_) {
        v *= s;
    }
    return *this;
}

Matrix&
Matrix::operator/=(double s)
{
    for (double& v : data_) {
        v /= s;
    }
    return *this;
}

Matrix
Matrix::transpose() const
{
    Matrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

Matrix
Matrix::block(std::size_t r, std::size_t c,
              std::size_t h, std::size_t w) const
{
    if (r + h > rows_ || c + w > cols_) {
        throw std::out_of_range("Matrix::block: out of range");
    }
    Matrix b(h, w);
    for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
            b(i, j) = (*this)(r + i, c + j);
        }
    }
    return b;
}

void
Matrix::setBlock(std::size_t r, std::size_t c, const Matrix& src)
{
    if (r + src.rows() > rows_ || c + src.cols() > cols_) {
        throw std::out_of_range("Matrix::setBlock: out of range");
    }
    for (std::size_t i = 0; i < src.rows(); ++i) {
        for (std::size_t j = 0; j < src.cols(); ++j) {
            (*this)(r + i, c + j) = src(i, j);
        }
    }
}

Matrix
Matrix::row(std::size_t r) const
{
    return block(r, 0, 1, cols_);
}

Matrix
Matrix::col(std::size_t c) const
{
    return block(0, c, rows_, 1);
}

std::vector<double>
Matrix::diagonal() const
{
    std::size_t n = std::min(rows_, cols_);
    std::vector<double> d(n);
    for (std::size_t i = 0; i < n; ++i) {
        d[i] = (*this)(i, i);
    }
    return d;
}

double
Matrix::trace() const
{
    if (!isSquare()) {
        throw std::invalid_argument("Matrix::trace: non-square matrix");
    }
    double t = 0.0;
    for (std::size_t i = 0; i < rows_; ++i) {
        t += (*this)(i, i);
    }
    return t;
}

double
Matrix::normFro() const
{
    double s = 0.0;
    for (double v : data_) {
        s += v * v;
    }
    return std::sqrt(s);
}

double
Matrix::normInf() const
{
    double best = 0.0;
    for (std::size_t r = 0; r < rows_; ++r) {
        double sum = 0.0;
        for (std::size_t c = 0; c < cols_; ++c) {
            sum += std::abs((*this)(r, c));
        }
        best = std::max(best, sum);
    }
    return best;
}

double
Matrix::maxAbs() const
{
    double best = 0.0;
    for (double v : data_) {
        best = std::max(best, std::abs(v));
    }
    return best;
}

bool
Matrix::isApprox(const Matrix& rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        return false;
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        // Negated <= so that NaNs compare as "not close".
        if (!(std::abs(data_[i] - rhs.data_[i]) <= tol)) {
            return false;
        }
    }
    return true;
}

bool
Matrix::allFinite() const
{
    for (double v : data_) {
        if (!std::isfinite(v)) {
            return false;
        }
    }
    return true;
}

std::string
Matrix::toString(int precision) const
{
    std::ostringstream os;
    os << std::setprecision(precision);
    for (std::size_t r = 0; r < rows_; ++r) {
        os << (r == 0 ? "[" : " ");
        for (std::size_t c = 0; c < cols_; ++c) {
            os << std::setw(precision + 7) << (*this)(r, c);
        }
        os << (r + 1 == rows_ ? " ]" : "\n");
    }
    return os.str();
}

Matrix
operator+(Matrix lhs, const Matrix& rhs)
{
    lhs += rhs;
    return lhs;
}

Matrix
operator-(Matrix lhs, const Matrix& rhs)
{
    lhs -= rhs;
    return lhs;
}

Matrix
operator-(const Matrix& m)
{
    Matrix r = m;
    r *= -1.0;
    return r;
}

Matrix
operator*(const Matrix& lhs, const Matrix& rhs)
{
    if (lhs.cols() != rhs.rows()) {
        throw std::invalid_argument(
            "Matrix*: shape mismatch (" + std::to_string(lhs.rows()) + "x" +
            std::to_string(lhs.cols()) + " * " + std::to_string(rhs.rows()) +
            "x" + std::to_string(rhs.cols()) + ")");
    }
    Matrix out(lhs.rows(), rhs.cols());
    // The sparsity skip below would drop IEEE non-finite propagation
    // (0 * NaN must be NaN, 0 * Inf must be NaN), so it only fires
    // when the right operand is verified finite.
    const bool rhs_finite = rhs.allFinite();
    for (std::size_t i = 0; i < lhs.rows(); ++i) {
        for (std::size_t k = 0; k < lhs.cols(); ++k) {
            double a = lhs(i, k);
            // yukta-lint: allow(float-eq) sparsity skip
            if (a == 0.0 && rhs_finite) {
                continue;
            }
            for (std::size_t j = 0; j < rhs.cols(); ++j) {
                out(i, j) += a * rhs(k, j);
            }
        }
    }
    return out;
}

Matrix
operator*(double s, Matrix m)
{
    m *= s;
    return m;
}

Matrix
operator*(Matrix m, double s)
{
    m *= s;
    return m;
}

Matrix
operator/(Matrix m, double s)
{
    m /= s;
    return m;
}

bool
operator==(const Matrix& lhs, const Matrix& rhs)
{
    return lhs.isApprox(rhs, 0.0);
}

std::ostream&
operator<<(std::ostream& os, const Matrix& m)
{
    return os << m.toString();
}

Matrix
hstack(const Matrix& lhs, const Matrix& rhs)
{
    // Only a 0x0 matrix acts as the neutral element; matrices with one
    // zero dimension still participate so port bookkeeping stays exact.
    if (lhs.rows() == 0 && lhs.cols() == 0) {
        return rhs;
    }
    if (rhs.rows() == 0 && rhs.cols() == 0) {
        return lhs;
    }
    if (lhs.rows() != rhs.rows()) {
        throw std::invalid_argument("hstack: row count mismatch");
    }
    Matrix out(lhs.rows(), lhs.cols() + rhs.cols());
    out.setBlock(0, 0, lhs);
    out.setBlock(0, lhs.cols(), rhs);
    return out;
}

Matrix
vstack(const Matrix& lhs, const Matrix& rhs)
{
    if (lhs.rows() == 0 && lhs.cols() == 0) {
        return rhs;
    }
    if (rhs.rows() == 0 && rhs.cols() == 0) {
        return lhs;
    }
    if (lhs.cols() != rhs.cols()) {
        throw std::invalid_argument("vstack: column count mismatch");
    }
    Matrix out(lhs.rows() + rhs.rows(), lhs.cols());
    out.setBlock(0, 0, lhs);
    out.setBlock(lhs.rows(), 0, rhs);
    return out;
}

Matrix
blkdiag(const Matrix& lhs, const Matrix& rhs)
{
    Matrix out(lhs.rows() + rhs.rows(), lhs.cols() + rhs.cols());
    out.setBlock(0, 0, lhs);
    out.setBlock(lhs.rows(), lhs.cols(), rhs);
    return out;
}

Matrix
kron(const Matrix& lhs, const Matrix& rhs)
{
    Matrix out(lhs.rows() * rhs.rows(), lhs.cols() * rhs.cols());
    for (std::size_t i = 0; i < lhs.rows(); ++i) {
        for (std::size_t j = 0; j < lhs.cols(); ++j) {
            double a = lhs(i, j);
            if (a == 0.0) {  // yukta-lint: allow(float-eq) sparsity skip
                continue;
            }
            for (std::size_t k = 0; k < rhs.rows(); ++k) {
                for (std::size_t l = 0; l < rhs.cols(); ++l) {
                    out(i * rhs.rows() + k, j * rhs.cols() + l) =
                        a * rhs(k, l);
                }
            }
        }
    }
    return out;
}

Matrix
vec(const Matrix& m)
{
    Matrix v(m.rows() * m.cols(), 1);
    std::size_t idx = 0;
    for (std::size_t c = 0; c < m.cols(); ++c) {
        for (std::size_t r = 0; r < m.rows(); ++r) {
            v(idx++, 0) = m(r, c);
        }
    }
    return v;
}

Matrix
unvec(const Matrix& v, std::size_t rows, std::size_t cols)
{
    if (v.rows() != rows * cols || v.cols() != 1) {
        throw std::invalid_argument("unvec: size mismatch");
    }
    Matrix m(rows, cols);
    std::size_t idx = 0;
    for (std::size_t c = 0; c < cols; ++c) {
        for (std::size_t r = 0; r < rows; ++r) {
            m(r, c) = v(idx++, 0);
        }
    }
    return m;
}

}  // namespace yukta::linalg
