#include "linalg/expm.h"

#include <cmath>
#include <stdexcept>

#include "core/contracts.h"
#include "linalg/lu.h"

namespace yukta::linalg {

namespace {

/** 1-norm (max absolute column sum). */
double
norm1(const Matrix& a)
{
    double best = 0.0;
    for (std::size_t c = 0; c < a.cols(); ++c) {
        double sum = 0.0;
        for (std::size_t r = 0; r < a.rows(); ++r) {
            sum += std::abs(a(r, c));
        }
        best = std::max(best, sum);
    }
    return best;
}

}  // namespace

Matrix
expm(const Matrix& a)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("expm: matrix must be square");
    }
    YUKTA_CHECK_FINITE(a, "expm: non-finite ", a.rows(), "x", a.cols(),
                       " input");
    std::size_t n = a.rows();
    if (n == 0) {
        return a;
    }

    // Scaling: bring ||A/2^s|| under theta_13 ~ 5.37.
    const double theta13 = 5.371920351148152;
    double nrm = norm1(a);
    int s = 0;
    if (nrm > theta13) {
        s = static_cast<int>(std::ceil(std::log2(nrm / theta13)));
    }
    Matrix as = a / std::pow(2.0, s);

    // Pade [13/13] coefficients.
    const double b[] = {64764752532480000.0, 32382376266240000.0,
                        7771770303897600.0,  1187353796428800.0,
                        129060195264000.0,   10559470521600.0,
                        670442572800.0,      33522128640.0,
                        1323241920.0,        40840800.0,
                        960960.0,            16380.0,
                        182.0,               1.0};

    Matrix eye = Matrix::identity(n);
    Matrix a2 = as * as;
    Matrix a4 = a2 * a2;
    Matrix a6 = a2 * a4;

    Matrix u_inner = a6 * (b[13] * a6 + b[11] * a4 + b[9] * a2) +
                     b[7] * a6 + b[5] * a4 + b[3] * a2 + b[1] * eye;
    Matrix u = as * u_inner;
    Matrix v = a6 * (b[12] * a6 + b[10] * a4 + b[8] * a2) + b[6] * a6 +
               b[4] * a4 + b[2] * a2 + b[0] * eye;

    // (V - U) X = (V + U).
    Matrix x = solve(v - u, v + u);

    for (int i = 0; i < s; ++i) {
        x = x * x;
    }
    return x;
}

}  // namespace yukta::linalg
