#include "linalg/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

namespace {

/**
 * One-sided Jacobi SVD on a matrix with rows >= cols. Columns of the
 * working copy are rotated until pairwise orthogonal; the rotations
 * are accumulated into V.
 */
CSvd
jacobiSvdTall(const CMatrix& a)
{
    std::size_t m = a.rows();
    std::size_t n = a.cols();
    CMatrix w = a;
    CMatrix v = CMatrix::identity(n);

    const int max_sweeps = 60;
    const double tol = 1e-14;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double max_cos = 0.0;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                // Column inner products.
                double app = 0.0;
                double aqq = 0.0;
                Complex apq(0.0, 0.0);
                for (std::size_t i = 0; i < m; ++i) {
                    app += std::norm(w(i, p));
                    aqq += std::norm(w(i, q));
                    apq += std::conj(w(i, p)) * w(i, q);
                }
                double mag = std::abs(apq);
                double denom = std::sqrt(app * aqq);
                if (denom < 1e-300 || mag <= tol * denom) {
                    continue;
                }
                max_cos = std::max(max_cos, mag / denom);

                Complex phase = apq / mag;
                double tau = (aqq - app) / (2.0 * mag);
                double t = (tau >= 0.0 ? 1.0 : -1.0) /
                           (std::abs(tau) + std::sqrt(1.0 + tau * tau));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double s = t * c;

                // w_p' = c w_p - s conj(phase) w_q
                // w_q' = s phase  w_p + c w_q
                Complex sp = s * std::conj(phase);
                Complex sq = s * phase;
                for (std::size_t i = 0; i < m; ++i) {
                    Complex wp = w(i, p);
                    Complex wq = w(i, q);
                    w(i, p) = c * wp - sp * wq;
                    w(i, q) = sq * wp + c * wq;
                }
                for (std::size_t i = 0; i < n; ++i) {
                    Complex vp = v(i, p);
                    Complex vq = v(i, q);
                    v(i, p) = c * vp - sp * vq;
                    v(i, q) = sq * vp + c * vq;
                }
            }
        }
        if (max_cos <= tol) {
            break;
        }
    }

    // Singular values = column norms; U = normalized columns.
    CSvd out;
    out.s.resize(n);
    out.u = CMatrix(m, n);
    out.v = CMatrix(n, n);
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::vector<double> norms(n);
    for (std::size_t j = 0; j < n; ++j) {
        double nn = 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            nn += std::norm(w(i, j));
        }
        norms[j] = std::sqrt(nn);
    }
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
        return norms[i] > norms[j];
    });
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t j = order[k];
        out.s[k] = norms[j];
        double inv = norms[j] > 1e-300 ? 1.0 / norms[j] : 0.0;
        for (std::size_t i = 0; i < m; ++i) {
            out.u(i, k) = w(i, j) * inv;
        }
        for (std::size_t i = 0; i < n; ++i) {
            out.v(i, k) = v(i, j);
        }
    }
    return out;
}

}  // namespace

CSvd
svd(const CMatrix& a)
{
    if (a.empty()) {
        return {};
    }
    YUKTA_CHECK_FINITE(a, "svd: non-finite ", a.rows(), "x", a.cols(),
                       " input");
    if (a.rows() >= a.cols()) {
        return jacobiSvdTall(a);
    }
    // A = U S V^H  <=>  A^H = V S U^H.
    CSvd t = jacobiSvdTall(a.adjoint());
    CSvd out;
    out.u = t.v;
    out.s = t.s;
    out.v = t.u;
    return out;
}

Svd
svd(const Matrix& a)
{
    CSvd c = svd(CMatrix(a));
    Svd out;
    out.u = c.u.realPart();
    out.s = c.s;
    out.v = c.v.realPart();
    return out;
}

double
sigmaMax(const CMatrix& a)
{
    if (a.empty()) {
        return 0.0;
    }
    CSvd d = svd(a);
    return d.s.empty() ? 0.0 : d.s.front();
}

double
sigmaMax(const Matrix& a)
{
    return sigmaMax(CMatrix(a));
}

double
sigmaMin(const Matrix& a)
{
    if (a.empty()) {
        return 0.0;
    }
    Svd d = svd(a);
    return d.s.empty() ? 0.0 : d.s.back();
}

Matrix
pinv(const Matrix& a, double rtol)
{
    if (a.empty()) {
        return Matrix(a.cols(), a.rows());
    }
    Svd d = svd(a);
    double cutoff = rtol * (d.s.empty() ? 0.0 : d.s.front());
    Matrix out(a.cols(), a.rows());
    for (std::size_t k = 0; k < d.s.size(); ++k) {
        if (d.s[k] <= cutoff || d.s[k] == 0.0) {  // yukta-lint: allow(float-eq)
            continue;
        }
        double inv = 1.0 / d.s[k];
        for (std::size_t i = 0; i < a.cols(); ++i) {
            for (std::size_t j = 0; j < a.rows(); ++j) {
                out(i, j) += d.v(i, k) * inv * d.u(j, k);
            }
        }
    }
    return out;
}

}  // namespace yukta::linalg
