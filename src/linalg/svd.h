#ifndef YUKTA_LINALG_SVD_H_
#define YUKTA_LINALG_SVD_H_

/**
 * @file
 * Singular value decompositions via one-sided Jacobi. The complex SVD
 * drives the structured-singular-value (mu) upper bound, where the
 * maximum singular value of a D-scaled frequency response is the
 * quantity being minimized.
 */

#include <vector>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"

namespace yukta::linalg {

/** Complex SVD result A = U diag(s) V^H. */
struct CSvd
{
    CMatrix u;                    ///< m x r, orthonormal columns.
    std::vector<double> s;        ///< Singular values, descending.
    CMatrix v;                    ///< n x r, orthonormal columns.
};

/** Real SVD result A = U diag(s) V^T. */
struct Svd
{
    Matrix u;                     ///< m x r, orthonormal columns.
    std::vector<double> s;        ///< Singular values, descending.
    Matrix v;                     ///< n x r, orthonormal columns.
};

/**
 * Thin SVD of a complex matrix via one-sided Jacobi
 * (r = min(rows, cols)).
 */
CSvd svd(const CMatrix& a);

/** Thin SVD of a real matrix. */
Svd svd(const Matrix& a);

/** @return the largest singular value of @p a (0 for empty). */
double sigmaMax(const CMatrix& a);

/** @return the largest singular value of @p a (0 for empty). */
double sigmaMax(const Matrix& a);

/** @return the smallest singular value of @p a. */
double sigmaMin(const Matrix& a);

/**
 * Moore-Penrose pseudo-inverse with singular values below
 * @p rtol * sigma_max treated as zero.
 */
Matrix pinv(const Matrix& a, double rtol = 1e-12);

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_SVD_H_
