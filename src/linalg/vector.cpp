#include "linalg/vector.h"

#include <cmath>
#include <stdexcept>

namespace yukta::linalg {

Vector&
Vector::operator+=(const Vector& rhs)
{
    if (size() != rhs.size()) {
        throw std::invalid_argument("Vector+=: size mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += rhs.data_[i];
    }
    return *this;
}

Vector&
Vector::operator-=(const Vector& rhs)
{
    if (size() != rhs.size()) {
        throw std::invalid_argument("Vector-=: size mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= rhs.data_[i];
    }
    return *this;
}

Vector&
Vector::operator*=(double s)
{
    for (double& v : data_) {
        v *= s;
    }
    return *this;
}

double
Vector::norm2() const
{
    double s = 0.0;
    for (double v : data_) {
        s += v * v;
    }
    return std::sqrt(s);
}

double
Vector::maxAbs() const
{
    double best = 0.0;
    for (double v : data_) {
        best = std::max(best, std::abs(v));
    }
    return best;
}

double
Vector::dot(const Vector& rhs) const
{
    if (size() != rhs.size()) {
        throw std::invalid_argument("Vector::dot: size mismatch");
    }
    double s = 0.0;
    for (std::size_t i = 0; i < data_.size(); ++i) {
        s += data_[i] * rhs.data_[i];
    }
    return s;
}

Matrix
Vector::asColumn() const
{
    Matrix m(size(), 1);
    for (std::size_t i = 0; i < size(); ++i) {
        m(i, 0) = data_[i];
    }
    return m;
}

Matrix
Vector::asRow() const
{
    Matrix m(1, size());
    for (std::size_t i = 0; i < size(); ++i) {
        m(0, i) = data_[i];
    }
    return m;
}

Vector
Vector::segment(std::size_t begin, std::size_t len) const
{
    if (begin + len > size()) {
        throw std::out_of_range("Vector::segment: out of range");
    }
    Vector out(len);
    for (std::size_t i = 0; i < len; ++i) {
        out[i] = data_[begin + i];
    }
    return out;
}

bool
Vector::isApprox(const Vector& rhs, double tol) const
{
    if (size() != rhs.size()) {
        return false;
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        // Negated <= so that NaNs compare as "not close".
        if (!(std::abs(data_[i] - rhs.data_[i]) <= tol)) {
            return false;
        }
    }
    return true;
}

Vector
operator+(Vector lhs, const Vector& rhs)
{
    lhs += rhs;
    return lhs;
}

Vector
operator-(Vector lhs, const Vector& rhs)
{
    lhs -= rhs;
    return lhs;
}

Vector
operator*(double s, Vector v)
{
    v *= s;
    return v;
}

Vector
operator*(Vector v, double s)
{
    v *= s;
    return v;
}

Vector
operator*(const Matrix& m, const Vector& v)
{
    if (m.cols() != v.size()) {
        throw std::invalid_argument("Matrix*Vector: size mismatch");
    }
    Vector out(m.rows());
    for (std::size_t r = 0; r < m.rows(); ++r) {
        double s = 0.0;
        for (std::size_t c = 0; c < m.cols(); ++c) {
            s += m(r, c) * v[c];
        }
        out[r] = s;
    }
    return out;
}

Vector
concat(const Vector& lhs, const Vector& rhs)
{
    Vector out(lhs.size() + rhs.size());
    for (std::size_t i = 0; i < lhs.size(); ++i) {
        out[i] = lhs[i];
    }
    for (std::size_t i = 0; i < rhs.size(); ++i) {
        out[lhs.size() + i] = rhs[i];
    }
    return out;
}

Vector
toVector(const Matrix& m)
{
    if (m.cols() != 1) {
        throw std::invalid_argument("toVector: matrix is not a column");
    }
    Vector out(m.rows());
    for (std::size_t i = 0; i < m.rows(); ++i) {
        out[i] = m(i, 0);
    }
    return out;
}

}  // namespace yukta::linalg
