#include "linalg/hessenberg.h"

#include <cmath>
#include <stdexcept>
#include <vector>

namespace yukta::linalg {

HessenbergForm
hessenbergReduce(const Matrix& a)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("hessenbergReduce: matrix must be square");
    }
    const std::size_t n = a.rows();
    HessenbergForm out{a, Matrix::identity(n)};
    Matrix& h = out.h;
    Matrix& q = out.q;
    if (n < 3) {
        return out;
    }

    std::vector<double> v(n, 0.0);
    for (std::size_t k = 0; k + 2 < n; ++k) {
        // Householder vector zeroing column k below the subdiagonal.
        double norm = 0.0;
        for (std::size_t i = k + 1; i < n; ++i) {
            norm = std::hypot(norm, h(i, k));
        }
        if (norm < 1e-300) {
            continue;
        }
        const double alpha = h(k + 1, k) >= 0.0 ? -norm : norm;
        double vnorm2 = 0.0;
        for (std::size_t i = k + 1; i < n; ++i) {
            v[i] = h(i, k);
            if (i == k + 1) {
                v[i] -= alpha;
            }
            vnorm2 += v[i] * v[i];
        }
        if (vnorm2 < 1e-300) {
            continue;
        }
        const double beta = 2.0 / vnorm2;

        // H := (I - beta v v^T) H
        for (std::size_t c = 0; c < n; ++c) {
            double s = 0.0;
            for (std::size_t i = k + 1; i < n; ++i) {
                s += v[i] * h(i, c);
            }
            s *= beta;
            for (std::size_t i = k + 1; i < n; ++i) {
                h(i, c) -= s * v[i];
            }
        }
        // H := H (I - beta v v^T)
        for (std::size_t r = 0; r < n; ++r) {
            double s = 0.0;
            for (std::size_t i = k + 1; i < n; ++i) {
                s += h(r, i) * v[i];
            }
            s *= beta;
            for (std::size_t i = k + 1; i < n; ++i) {
                h(r, i) -= s * v[i];
            }
        }
        // Q := Q (I - beta v v^T), so A = Q H Q^T accumulates.
        for (std::size_t r = 0; r < n; ++r) {
            double s = 0.0;
            for (std::size_t i = k + 1; i < n; ++i) {
                s += q(r, i) * v[i];
            }
            s *= beta;
            for (std::size_t i = k + 1; i < n; ++i) {
                q(r, i) -= s * v[i];
            }
        }
        // The reflection zeroed these analytically; pin them so the
        // solver can rely on exact Hessenberg structure.
        h(k + 1, k) = alpha;
        for (std::size_t i = k + 2; i < n; ++i) {
            h(i, k) = 0.0;
        }
    }
    return out;
}

HessenbergSolver::HessenbergSolver(const Matrix& h, std::size_t rhs_cols)
    : h_(h), u_(h.rows(), h.rows()), x_(h.rows(), rhs_cols)
{
    if (!h_.isSquare()) {
        throw std::invalid_argument("HessenbergSolver: H must be square");
    }
}

namespace {

/**
 * LAPACK-style cabs1: |re| + |im|. Equivalent to the modulus within a
 * factor of sqrt(2), which is all a pivot comparison or a singularity
 * guard needs, and it avoids a hypot call per comparison on the per-
 * grid-point hot path.
 */
double
cabs1(Complex z)
{
    return std::abs(z.real()) + std::abs(z.imag());
}

}  // namespace

const CMatrix&
HessenbergSolver::solve(Complex z, const CMatrix& b)
{
    const std::size_t n = h_.rows();
    const std::size_t m = x_.cols();
    if (b.rows() != n || b.cols() != m) {
        throw std::invalid_argument("HessenbergSolver: rhs shape mismatch");
    }

    // Raw row-major views of the preallocated workspaces: the solver
    // runs once per grid point, so per-element accessor calls would
    // dominate the O(n^2) arithmetic at the orders we care about.
    const double* hp = h_.data();
    Complex* u = u_.data();
    Complex* x = x_.data();
    const Complex* bp = b.data();
    for (std::size_t i = 0; i < n * m; ++i) {
        x[i] = bp[i];
    }

    // u_ := zI - H on and above the subdiagonal (the rest is never
    // read: elimination fills row k+1 starting at column k only).
    for (std::size_t i = 0; i < n; ++i) {
        const std::size_t j0 = i == 0 ? 0 : i - 1;
        for (std::size_t j = j0; j < n; ++j) {
            u[i * n + j] = Complex(-hp[i * n + j], 0.0);
        }
        u[i * n + i] += z;
    }

    // Forward elimination with pairwise pivoting: on a Hessenberg
    // matrix only rows k and k+1 can carry the pivot for column k.
    for (std::size_t k = 0; k + 1 < n; ++k) {
        Complex* rk = u + k * n;
        Complex* rk1 = u + (k + 1) * n;
        if (cabs1(rk1[k]) > cabs1(rk[k])) {
            for (std::size_t j = k; j < n; ++j) {
                std::swap(rk[j], rk1[j]);
            }
            for (std::size_t j = 0; j < m; ++j) {
                std::swap(x[k * m + j], x[(k + 1) * m + j]);
            }
        }
        const Complex piv = rk[k];
        if (cabs1(piv) < 1e-300) {
            throw std::runtime_error("HessenbergSolver: singular matrix");
        }
        const Complex mult = rk1[k] / piv;
        if (mult != Complex(0.0, 0.0)) {
            for (std::size_t j = k + 1; j < n; ++j) {
                rk1[j] -= mult * rk[j];
            }
            for (std::size_t j = 0; j < m; ++j) {
                x[(k + 1) * m + j] -= mult * x[k * m + j];
            }
        }
    }
    if (n > 0 && cabs1(u[(n - 1) * n + (n - 1)]) < 1e-300) {
        throw std::runtime_error("HessenbergSolver: singular matrix");
    }

    // Back substitution on the now upper-triangular u_. One complex
    // division per row (the reciprocal), multiplies per column.
    for (std::size_t ri = n; ri-- > 0;) {
        const Complex* ru = u + ri * n;
        const Complex rinv = Complex(1.0, 0.0) / ru[ri];
        for (std::size_t j = 0; j < m; ++j) {
            Complex s = x[ri * m + j];
            for (std::size_t c = ri + 1; c < n; ++c) {
                s -= ru[c] * x[c * m + j];
            }
            x[ri * m + j] = s * rinv;
        }
    }
    return x_;
}

}  // namespace yukta::linalg
