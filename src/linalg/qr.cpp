#include "linalg/qr.h"

#include <cmath>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

Qr::Qr(const Matrix& a) : qr_(a), rdiag_(a.cols(), 0.0)
{
    std::size_t m = a.rows();
    std::size_t n = a.cols();
    if (m < n) {
        throw std::invalid_argument("Qr: requires rows >= cols");
    }
    YUKTA_CHECK_FINITE(a, "Qr: non-finite ", m, "x", n, " input");

    for (std::size_t k = 0; k < n; ++k) {
        // Compute the Householder reflector for column k.
        double norm = 0.0;
        for (std::size_t i = k; i < m; ++i) {
            norm = std::hypot(norm, qr_(i, k));
        }
        if (norm < 1e-300) {
            full_rank_ = false;
            rdiag_[k] = 0.0;
            continue;
        }
        // Give norm the sign of the pivot so the reflector never
        // cancels (v_k = 1 + |x_k|/norm >= 1).
        if (qr_(k, k) < 0.0) {
            norm = -norm;
        }
        for (std::size_t i = k; i < m; ++i) {
            qr_(i, k) /= norm;
        }
        qr_(k, k) += 1.0;

        // Apply the reflector to the remaining columns.
        for (std::size_t j = k + 1; j < n; ++j) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) {
                s += qr_(i, k) * qr_(i, j);
            }
            s = -s / qr_(k, k);
            for (std::size_t i = k; i < m; ++i) {
                qr_(i, j) += s * qr_(i, k);
            }
        }
        rdiag_[k] = -norm;
    }
}

void
Qr::applyQt(Matrix& x) const
{
    std::size_t m = qr_.rows();
    std::size_t n = qr_.cols();
    for (std::size_t k = 0; k < n; ++k) {
        if (rdiag_[k] == 0.0) {  // yukta-lint: allow(float-eq)
            continue;
        }
        for (std::size_t c = 0; c < x.cols(); ++c) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) {
                s += qr_(i, k) * x(i, c);
            }
            s = -s / qr_(k, k);
            for (std::size_t i = k; i < m; ++i) {
                x(i, c) += s * qr_(i, k);
            }
        }
    }
}

Matrix
Qr::q() const
{
    std::size_t m = qr_.rows();
    std::size_t n = qr_.cols();
    // Build Q by applying the reflectors to the thin identity,
    // working backwards so each reflector touches a shrinking block.
    Matrix q(m, n);
    for (std::size_t i = 0; i < n; ++i) {
        q(i, i) = 1.0;
    }
    for (std::size_t k = n; k-- > 0;) {
        if (rdiag_[k] == 0.0) {  // yukta-lint: allow(float-eq)
            continue;
        }
        for (std::size_t c = 0; c < n; ++c) {
            double s = 0.0;
            for (std::size_t i = k; i < m; ++i) {
                s += qr_(i, k) * q(i, c);
            }
            s = -s / qr_(k, k);
            for (std::size_t i = k; i < m; ++i) {
                q(i, c) += s * qr_(i, k);
            }
        }
    }
    return q;
}

Matrix
Qr::r() const
{
    std::size_t n = qr_.cols();
    Matrix r(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        r(i, i) = rdiag_[i];
        for (std::size_t j = i + 1; j < n; ++j) {
            r(i, j) = qr_(i, j);
        }
    }
    return r;
}

Matrix
Qr::solve(const Matrix& b) const
{
    if (!full_rank_) {
        throw std::runtime_error("Qr::solve: rank-deficient matrix");
    }
    if (b.rows() != qr_.rows()) {
        throw std::invalid_argument("Qr::solve: shape mismatch");
    }
    std::size_t n = qr_.cols();
    Matrix y = b;
    applyQt(y);

    // Back substitution with R on the top n rows of Q^T b.
    Matrix x(n, b.cols());
    for (std::size_t c = 0; c < b.cols(); ++c) {
        for (std::size_t r = n; r-- > 0;) {
            double s = y(r, c);
            for (std::size_t k = r + 1; k < n; ++k) {
                s -= qr_(r, k) * x(k, c);
            }
            x(r, c) = s / rdiag_[r];
        }
    }
    return x;
}

Vector
Qr::solve(const Vector& b) const
{
    return toVector(solve(b.asColumn()));
}

Matrix
lstsq(const Matrix& a, const Matrix& b)
{
    return Qr(a).solve(b);
}

Vector
lstsq(const Matrix& a, const Vector& b)
{
    return Qr(a).solve(b);
}

Matrix
orthonormalize(const Matrix& a)
{
    return Qr(a).q();
}

}  // namespace yukta::linalg
