#ifndef YUKTA_LINALG_EIG_H_
#define YUKTA_LINALG_EIG_H_

/**
 * @file
 * Eigenvalue computations:
 *  - general (possibly complex) eigenvalues of real/complex square
 *    matrices via Hessenberg reduction + shifted QR iteration, used
 *    for pole/stability analysis of LTI systems;
 *  - real symmetric eigendecomposition via cyclic Jacobi, used for
 *    positive-(semi)definiteness checks in the Riccati solvers.
 */

#include <vector>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"

namespace yukta::linalg {

/**
 * Computes all eigenvalues of a square complex matrix.
 *
 * @throws std::runtime_error if the QR iteration fails to converge.
 */
std::vector<Complex> eigenvalues(const CMatrix& a);

/** Computes all eigenvalues of a square real matrix. */
std::vector<Complex> eigenvalues(const Matrix& a);

/** @return max |lambda_i| over the eigenvalues of @p a. */
double spectralRadius(const Matrix& a);

/** @return max Re(lambda_i) over the eigenvalues of @p a. */
double spectralAbscissa(const Matrix& a);

/** Result of a symmetric eigendecomposition A = V diag(w) V^T. */
struct SymmetricEigen
{
    std::vector<double> values;  ///< Eigenvalues, ascending.
    Matrix vectors;              ///< Orthonormal eigenvectors (columns).
};

/**
 * Eigendecomposition of a real symmetric matrix via cyclic Jacobi.
 * Only the lower triangle of @p a is read.
 */
SymmetricEigen symmetricEigen(const Matrix& a);

/** @return the smallest eigenvalue of a symmetric matrix. */
double minSymmetricEigenvalue(const Matrix& a);

/**
 * @return true when the symmetric matrix @p a is positive
 * semidefinite up to tolerance @p tol (relative to its norm).
 */
bool isPositiveSemidefinite(const Matrix& a, double tol = 1e-8);

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_EIG_H_
