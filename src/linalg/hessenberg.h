#ifndef YUKTA_LINALG_HESSENBERG_H_
#define YUKTA_LINALG_HESSENBERG_H_

/**
 * @file
 * Real orthogonal Hessenberg reduction and a reusable shifted
 * Hessenberg solver — the two halves of Laub's batched frequency-
 * response algorithm. Reducing A = Q H Q^T once costs O(n^3); after
 * that every evaluation of (zI - A)^{-1} B collapses to an O(n^2)
 * solve against the upper-Hessenberg H, because Gaussian elimination
 * on a Hessenberg matrix only ever touches the one subdiagonal.
 */

#include <cstddef>

#include "linalg/cmatrix.h"
#include "linalg/matrix.h"

namespace yukta::linalg {

/** Result of hessenbergReduce(): A = Q H Q^T with Q orthogonal. */
struct HessenbergForm
{
    Matrix h;  ///< Upper Hessenberg (exact zeros below the subdiagonal).
    Matrix q;  ///< Accumulated orthogonal transform.
};

/**
 * Reduces a real square matrix to upper Hessenberg form via
 * Householder reflections, accumulating the orthogonal Q.
 *
 * @param a square real matrix.
 * @return {H, Q} with A = Q H Q^T.
 * @throws std::invalid_argument when @p a is not square.
 */
HessenbergForm hessenbergReduce(const Matrix& a);

/**
 * Solves (zI - H) X = B for many shifts z against one upper-
 * Hessenberg H, reusing preallocated workspaces across calls.
 *
 * Each solve runs Gaussian elimination with pairwise (adjacent-row)
 * partial pivoting — stable on Hessenberg systems — in O(n^2) plus
 * an O(n^2 m) back substitution for an n x m right-hand side.
 */
class HessenbergSolver
{
  public:
    /**
     * Captures @p h (entries below the subdiagonal are ignored) and
     * sizes the workspaces for right-hand sides of @p rhs_cols
     * columns.
     */
    HessenbergSolver(const Matrix& h, std::size_t rhs_cols);

    /**
     * Solves (zI - H) X = B.
     *
     * @param z the complex shift (s or e^{j w Ts}).
     * @param b right-hand side, n x rhs_cols.
     * @return the solution X in an internal workspace, valid until
     *   the next solve() call.
     * @throws std::runtime_error when zI - H is numerically singular.
     */
    const CMatrix& solve(Complex z, const CMatrix& b);

  private:
    Matrix h_;    ///< The Hessenberg matrix (referenced every solve).
    CMatrix u_;   ///< Workspace: elimination copy of zI - H.
    CMatrix x_;   ///< Workspace: right-hand side, then the solution.
};

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_HESSENBERG_H_
