#ifndef YUKTA_LINALG_LU_H_
#define YUKTA_LINALG_LU_H_

/**
 * @file
 * LU and Cholesky factorizations of real matrices, plus the solve /
 * inverse / determinant helpers built on them.
 */

#include <cstddef>
#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace yukta::linalg {

/**
 * Partial-pivot LU factorization P A = L U of a square matrix.
 *
 * The factorization is computed once in the constructor; solve() and
 * friends then reuse it.
 */
class Lu
{
  public:
    /** Factorizes @p a. @throws std::invalid_argument if not square. */
    explicit Lu(const Matrix& a);

    /** @return true when the matrix is numerically non-singular. */
    bool invertible() const { return invertible_; }

    /**
     * Solves A x = b for a multi-column right-hand side.
     * @throws std::runtime_error when the matrix is singular.
     */
    Matrix solve(const Matrix& b) const;

    /** Solves A x = b for a vector right-hand side. */
    Vector solve(const Vector& b) const;

    /** @return the inverse A^-1. */
    Matrix inverse() const;

    /** @return det(A), including the pivot sign. */
    double determinant() const;

    /** @return a cheap infinity-norm reciprocal condition estimate. */
    double rcondEstimate() const;

  private:
    Matrix lu_;
    std::vector<std::size_t> piv_;
    int pivSign_ = 1;
    bool invertible_ = true;
    double normA_ = 0.0;
};

/** Convenience: solves A x = b in one call. */
Matrix solve(const Matrix& a, const Matrix& b);

/** Convenience: solves A x = b for a vector b. */
Vector solve(const Matrix& a, const Vector& b);

/** Convenience: inverse of a square matrix. */
Matrix inverse(const Matrix& a);

/** Convenience: determinant of a square matrix. */
double determinant(const Matrix& a);

/**
 * Cholesky factorization A = L L^T of a symmetric positive definite
 * matrix, returning lower-triangular L.
 *
 * @param a symmetric matrix (only the lower triangle is read).
 * @param jitter multiple of the diagonal norm added when a pivot is
 *   non-positive; pass 0 to fail instead.
 * @throws std::runtime_error if the matrix is not positive definite
 *   (after at most one jitter attempt).
 */
Matrix cholesky(const Matrix& a, double jitter = 0.0);

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_LU_H_
