#include "linalg/cmatrix.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

CMatrix::CMatrix(std::size_t rows, std::size_t cols, Complex fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<Complex>> rows)
{
    rows_ = rows.size();
    cols_ = rows_ == 0 ? 0 : rows.begin()->size();
    data_.reserve(rows_ * cols_);
    for (const auto& r : rows) {
        if (r.size() != cols_) {
            throw std::invalid_argument("CMatrix: ragged initializer list");
        }
        data_.insert(data_.end(), r.begin(), r.end());
    }
}

CMatrix::CMatrix(const Matrix& real)
    : rows_(real.rows()), cols_(real.cols()), data_(rows_ * cols_)
{
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            data_[r * cols_ + c] = Complex(real(r, c), 0.0);
        }
    }
}

CMatrix
CMatrix::identity(std::size_t n)
{
    CMatrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        m(i, i) = Complex(1.0, 0.0);
    }
    return m;
}

CMatrix
CMatrix::diag(const std::vector<double>& d)
{
    CMatrix m(d.size(), d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
        m(i, i) = Complex(d[i], 0.0);
    }
    return m;
}

Complex&
CMatrix::operator()(std::size_t r, std::size_t c)
{
    YUKTA_REQUIRE(r < rows_ && c < cols_, "CMatrix(", rows_, "x", cols_,
                  ") index (", r, ",", c, ")");
    return data_[r * cols_ + c];
}

Complex
CMatrix::operator()(std::size_t r, std::size_t c) const
{
    YUKTA_REQUIRE(r < rows_ && c < cols_, "CMatrix(", rows_, "x", cols_,
                  ") index (", r, ",", c, ")");
    return data_[r * cols_ + c];
}

CMatrix&
CMatrix::operator+=(const CMatrix& rhs)
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("CMatrix+=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] += rhs.data_[i];
    }
    return *this;
}

CMatrix&
CMatrix::operator-=(const CMatrix& rhs)
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        throw std::invalid_argument("CMatrix-=: shape mismatch");
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        data_[i] -= rhs.data_[i];
    }
    return *this;
}

CMatrix&
CMatrix::operator*=(Complex s)
{
    for (Complex& v : data_) {
        v *= s;
    }
    return *this;
}

CMatrix
CMatrix::adjoint() const
{
    CMatrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = std::conj((*this)(r, c));
        }
    }
    return t;
}

CMatrix
CMatrix::transpose() const
{
    CMatrix t(cols_, rows_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            t(c, r) = (*this)(r, c);
        }
    }
    return t;
}

CMatrix
CMatrix::block(std::size_t r, std::size_t c,
               std::size_t h, std::size_t w) const
{
    if (r + h > rows_ || c + w > cols_) {
        throw std::out_of_range("CMatrix::block: out of range");
    }
    CMatrix b(h, w);
    for (std::size_t i = 0; i < h; ++i) {
        for (std::size_t j = 0; j < w; ++j) {
            b(i, j) = (*this)(r + i, c + j);
        }
    }
    return b;
}

void
CMatrix::setBlock(std::size_t r, std::size_t c, const CMatrix& src)
{
    if (r + src.rows() > rows_ || c + src.cols() > cols_) {
        throw std::out_of_range("CMatrix::setBlock: out of range");
    }
    for (std::size_t i = 0; i < src.rows(); ++i) {
        for (std::size_t j = 0; j < src.cols(); ++j) {
            (*this)(r + i, c + j) = src(i, j);
        }
    }
}

Matrix
CMatrix::realPart() const
{
    Matrix m(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            m(r, c) = (*this)(r, c).real();
        }
    }
    return m;
}

Matrix
CMatrix::imagPart() const
{
    Matrix m(rows_, cols_);
    for (std::size_t r = 0; r < rows_; ++r) {
        for (std::size_t c = 0; c < cols_; ++c) {
            m(r, c) = (*this)(r, c).imag();
        }
    }
    return m;
}

double
CMatrix::normFro() const
{
    double s = 0.0;
    for (const Complex& v : data_) {
        s += std::norm(v);
    }
    return std::sqrt(s);
}

double
CMatrix::maxAbs() const
{
    double best = 0.0;
    for (const Complex& v : data_) {
        best = std::max(best, std::abs(v));
    }
    return best;
}

bool
CMatrix::isApprox(const CMatrix& rhs, double tol) const
{
    if (rows_ != rhs.rows_ || cols_ != rhs.cols_) {
        return false;
    }
    for (std::size_t i = 0; i < data_.size(); ++i) {
        // Negated <= so that NaNs compare as "not close".
        if (!(std::abs(data_[i] - rhs.data_[i]) <= tol)) {
            return false;
        }
    }
    return true;
}

bool
CMatrix::allFinite() const
{
    for (const Complex& v : data_) {
        if (!std::isfinite(v.real()) || !std::isfinite(v.imag())) {
            return false;
        }
    }
    return true;
}

CMatrix
operator+(CMatrix lhs, const CMatrix& rhs)
{
    lhs += rhs;
    return lhs;
}

CMatrix
operator-(CMatrix lhs, const CMatrix& rhs)
{
    lhs -= rhs;
    return lhs;
}

CMatrix
operator*(const CMatrix& lhs, const CMatrix& rhs)
{
    if (lhs.cols() != rhs.rows()) {
        throw std::invalid_argument("CMatrix*: shape mismatch");
    }
    CMatrix out(lhs.rows(), rhs.cols());
    // Skip only when the right operand is verified finite: 0 * NaN
    // and 0 * Inf must propagate as NaN (IEEE semantics).
    const bool rhs_finite = rhs.allFinite();
    for (std::size_t i = 0; i < lhs.rows(); ++i) {
        for (std::size_t k = 0; k < lhs.cols(); ++k) {
            Complex a = lhs(i, k);
            if (a == Complex(0.0, 0.0) && rhs_finite) {
                continue;
            }
            for (std::size_t j = 0; j < rhs.cols(); ++j) {
                out(i, j) += a * rhs(k, j);
            }
        }
    }
    return out;
}

CMatrix
operator*(Complex s, CMatrix m)
{
    m *= s;
    return m;
}

CMatrix
csolve(const CMatrix& a, const CMatrix& b)
{
    if (!a.isSquare() || a.rows() != b.rows()) {
        throw std::invalid_argument("csolve: shape mismatch");
    }
    std::size_t n = a.rows();
    CMatrix lu = a;
    CMatrix x = b;
    std::vector<std::size_t> piv(n);
    for (std::size_t i = 0; i < n; ++i) {
        piv[i] = i;
    }

    for (std::size_t k = 0; k < n; ++k) {
        // Partial pivoting on the largest magnitude below the diagonal.
        std::size_t p = k;
        double best = std::abs(lu(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            double v = std::abs(lu(r, k));
            if (v > best) {
                best = v;
                p = r;
            }
        }
        if (best < 1e-300) {
            throw std::runtime_error("csolve: singular matrix");
        }
        if (p != k) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu(k, c), lu(p, c));
            }
            for (std::size_t c = 0; c < x.cols(); ++c) {
                std::swap(x(k, c), x(p, c));
            }
        }
        for (std::size_t r = k + 1; r < n; ++r) {
            Complex f = lu(r, k) / lu(k, k);
            lu(r, k) = f;
            for (std::size_t c = k + 1; c < n; ++c) {
                lu(r, c) -= f * lu(k, c);
            }
            for (std::size_t c = 0; c < x.cols(); ++c) {
                x(r, c) -= f * x(k, c);
            }
        }
    }

    // Back substitution.
    for (std::size_t ci = 0; ci < x.cols(); ++ci) {
        for (std::size_t ri = n; ri-- > 0;) {
            Complex s = x(ri, ci);
            for (std::size_t c = ri + 1; c < n; ++c) {
                s -= lu(ri, c) * x(c, ci);
            }
            x(ri, ci) = s / lu(ri, ri);
        }
    }
    return x;
}

CMatrix
cinverse(const CMatrix& a)
{
    return csolve(a, CMatrix::identity(a.rows()));
}

}  // namespace yukta::linalg
