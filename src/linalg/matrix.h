#ifndef YUKTA_LINALG_MATRIX_H_
#define YUKTA_LINALG_MATRIX_H_

/**
 * @file
 * Dense real matrix type used throughout Yukta.
 *
 * The matrix is stored row-major in a contiguous buffer. The class is
 * deliberately small: decompositions (LU, QR, eigenvalues, SVD) live in
 * their own headers so that users only pay for what they include.
 */

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <string>
#include <vector>

namespace yukta::linalg {

class Vector;

/** Dense, row-major matrix of doubles. */
class Matrix
{
  public:
    /** Creates an empty 0x0 matrix. */
    Matrix() = default;

    /** Creates a rows x cols matrix filled with @p fill. */
    Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

    /**
     * Creates a matrix from nested initializer lists, e.g.
     * `Matrix m{{1, 2}, {3, 4}};`. All rows must have equal length.
     */
    Matrix(std::initializer_list<std::initializer_list<double>> rows);

    /** @return the identity matrix of size n. */
    static Matrix identity(std::size_t n);

    /** @return a rows x cols matrix of zeros. */
    static Matrix zeros(std::size_t rows, std::size_t cols);

    /** @return a rows x cols matrix of ones. */
    static Matrix ones(std::size_t rows, std::size_t cols);

    /** @return a square matrix with @p d on the diagonal. */
    static Matrix diag(const std::vector<double>& d);

    /** @return number of rows. */
    std::size_t rows() const { return rows_; }

    /** @return number of columns. */
    std::size_t cols() const { return cols_; }

    /** @return true when the matrix is 0x0. */
    bool empty() const { return rows_ == 0 || cols_ == 0; }

    /** @return true when rows() == cols(). */
    bool isSquare() const { return rows_ == cols_; }

    /**
     * Element access. Bounds-checked under YUKTA_CHECKS: out-of-range
     * access throws a ContractViolation naming the shape, e.g.
     * `Matrix(4x3) index (5,1)`.
     */
    double& operator()(std::size_t r, std::size_t c);
    double operator()(std::size_t r, std::size_t c) const;

    /** @return pointer to the contiguous row-major storage. */
    double* data() { return data_.data(); }
    const double* data() const { return data_.data(); }

    Matrix& operator+=(const Matrix& rhs);
    Matrix& operator-=(const Matrix& rhs);
    Matrix& operator*=(double s);
    Matrix& operator/=(double s);

    /** @return the transpose. */
    Matrix transpose() const;

    /** @return the sub-matrix of size h x w with top-left corner (r, c). */
    Matrix block(std::size_t r, std::size_t c,
                 std::size_t h, std::size_t w) const;

    /** Copies @p src into this matrix with top-left corner (r, c). */
    void setBlock(std::size_t r, std::size_t c, const Matrix& src);

    /** @return row @p r as a 1 x cols matrix. */
    Matrix row(std::size_t r) const;

    /** @return column @p c as a rows x 1 matrix. */
    Matrix col(std::size_t c) const;

    /** @return the main diagonal (works for non-square matrices too). */
    std::vector<double> diagonal() const;

    /** @return the sum of diagonal entries (square only). */
    double trace() const;

    /** @return the Frobenius norm. */
    double normFro() const;

    /** @return the infinity norm (max absolute row sum). */
    double normInf() const;

    /** @return the largest absolute entry (0 for empty matrices). */
    double maxAbs() const;

    /**
     * @return true when every entry differs from @p rhs by at most
     * @p tol (matrices of different shapes are never close).
     */
    bool isApprox(const Matrix& rhs, double tol = 1e-9) const;

    /** @return true when no entry is NaN or infinite. */
    bool allFinite() const;

    /** @return a human-readable multi-line rendering. */
    std::string toString(int precision = 4) const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<double> data_;
};

Matrix operator+(Matrix lhs, const Matrix& rhs);
Matrix operator-(Matrix lhs, const Matrix& rhs);
Matrix operator-(const Matrix& m);
Matrix operator*(const Matrix& lhs, const Matrix& rhs);
Matrix operator*(double s, Matrix m);
Matrix operator*(Matrix m, double s);
Matrix operator/(Matrix m, double s);
bool operator==(const Matrix& lhs, const Matrix& rhs);

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/** @return [lhs, rhs] side by side; both must have equal row counts. */
Matrix hstack(const Matrix& lhs, const Matrix& rhs);

/** @return [lhs; rhs] stacked; both must have equal column counts. */
Matrix vstack(const Matrix& lhs, const Matrix& rhs);

/** @return block-diagonal matrix diag(lhs, rhs). */
Matrix blkdiag(const Matrix& lhs, const Matrix& rhs);

/** @return the Kronecker product lhs (x) rhs. */
Matrix kron(const Matrix& lhs, const Matrix& rhs);

/** @return column-wise vectorization of @p m as an (rows*cols) x 1 matrix. */
Matrix vec(const Matrix& m);

/** Inverse of vec: reshapes an (rows*cols) x 1 matrix column-wise. */
Matrix unvec(const Matrix& v, std::size_t rows, std::size_t cols);

/** YUKTA_CHECK_FINITE customization point (see core/contracts.h). */
inline bool yuktaAllFinite(const Matrix& m) { return m.allFinite(); }

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_MATRIX_H_
