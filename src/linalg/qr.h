#ifndef YUKTA_LINALG_QR_H_
#define YUKTA_LINALG_QR_H_

/**
 * @file
 * Householder QR factorization and least-squares solves. The
 * least-squares path is the workhorse of system identification (ARX
 * regression) and of the stable-subspace extraction in the Riccati
 * solvers.
 */

#include <vector>

#include "linalg/matrix.h"
#include "linalg/vector.h"

namespace yukta::linalg {

/** Householder QR factorization A = Q R of an m x n matrix, m >= n. */
class Qr
{
  public:
    /** Factorizes @p a. @throws std::invalid_argument when m < n. */
    explicit Qr(const Matrix& a);

    /** @return the thin Q factor (m x n, orthonormal columns). */
    Matrix q() const;

    /** @return the upper-triangular R factor (n x n). */
    Matrix r() const;

    /**
     * Solves min ||A x - b||_2 for each column of @p b.
     * @throws std::runtime_error when A is numerically rank deficient.
     */
    Matrix solve(const Matrix& b) const;

    /** Vector version of solve(). */
    Vector solve(const Vector& b) const;

    /** @return true when all R diagonal entries are well above zero. */
    bool fullRank() const { return full_rank_; }

  private:
    /// Packed factorization: strict upper triangle holds R, lower
    /// triangle (incl. diagonal) holds the Householder vectors.
    Matrix qr_;
    std::vector<double> rdiag_;  ///< Diagonal of R.
    bool full_rank_ = true;

    /** Applies Q^T to @p x in place (x has qr_.rows() rows). */
    void applyQt(Matrix& x) const;
};

/** Convenience: least-squares solve min ||A x - b||. */
Matrix lstsq(const Matrix& a, const Matrix& b);

/** Convenience: vector least squares. */
Vector lstsq(const Matrix& a, const Vector& b);

/**
 * Orthonormalizes the columns of @p a (thin Q of its QR factorization).
 */
Matrix orthonormalize(const Matrix& a);

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_QR_H_
