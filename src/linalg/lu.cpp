#include "linalg/lu.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

Lu::Lu(const Matrix& a) : lu_(a), piv_(a.rows()), normA_(a.normInf())
{
    if (!a.isSquare()) {
        throw std::invalid_argument("Lu: matrix must be square");
    }
    YUKTA_CHECK_FINITE(a, "Lu: non-finite ", a.rows(), "x", a.cols(),
                       " input");
    std::size_t n = a.rows();
    for (std::size_t i = 0; i < n; ++i) {
        piv_[i] = i;
    }
    for (std::size_t k = 0; k < n; ++k) {
        std::size_t p = k;
        double best = std::abs(lu_(k, k));
        for (std::size_t r = k + 1; r < n; ++r) {
            double v = std::abs(lu_(r, k));
            if (v > best) {
                best = v;
                p = r;
            }
        }
        if (best < 1e-300) {
            invertible_ = false;
            continue;
        }
        if (p != k) {
            for (std::size_t c = 0; c < n; ++c) {
                std::swap(lu_(k, c), lu_(p, c));
            }
            std::swap(piv_[k], piv_[p]);
            pivSign_ = -pivSign_;
        }
        for (std::size_t r = k + 1; r < n; ++r) {
            double f = lu_(r, k) / lu_(k, k);
            lu_(r, k) = f;
            for (std::size_t c = k + 1; c < n; ++c) {
                lu_(r, c) -= f * lu_(k, c);
            }
        }
    }
}

Matrix
Lu::solve(const Matrix& b) const
{
    if (!invertible_) {
        throw std::runtime_error("Lu::solve: singular matrix");
    }
    if (b.rows() != lu_.rows()) {
        throw std::invalid_argument(
            "Lu::solve: shape mismatch (A is " + std::to_string(lu_.rows()) +
            "x" + std::to_string(lu_.cols()) + ", b has " +
            std::to_string(b.rows()) + " rows)");
    }
    YUKTA_CHECK_FINITE(b, "Lu::solve: non-finite right-hand side");
    std::size_t n = lu_.rows();
    Matrix x(n, b.cols());
    // Apply the row permutation to b.
    for (std::size_t r = 0; r < n; ++r) {
        for (std::size_t c = 0; c < b.cols(); ++c) {
            x(r, c) = b(piv_[r], c);
        }
    }
    // Forward substitution (L has unit diagonal).
    for (std::size_t r = 1; r < n; ++r) {
        for (std::size_t k = 0; k < r; ++k) {
            double f = lu_(r, k);
            if (f == 0.0) {  // yukta-lint: allow(float-eq) sparsity skip
                continue;
            }
            for (std::size_t c = 0; c < x.cols(); ++c) {
                x(r, c) -= f * x(k, c);
            }
        }
    }
    // Back substitution.
    for (std::size_t r = n; r-- > 0;) {
        for (std::size_t c = 0; c < x.cols(); ++c) {
            x(r, c) /= lu_(r, r);
        }
        for (std::size_t k = 0; k < r; ++k) {
            double f = lu_(k, r);
            if (f == 0.0) {  // yukta-lint: allow(float-eq) sparsity skip
                continue;
            }
            for (std::size_t c = 0; c < x.cols(); ++c) {
                x(k, c) -= f * x(r, c);
            }
        }
    }
    return x;
}

Vector
Lu::solve(const Vector& b) const
{
    return toVector(solve(b.asColumn()));
}

Matrix
Lu::inverse() const
{
    return solve(Matrix::identity(lu_.rows()));
}

double
Lu::determinant() const
{
    double d = pivSign_;
    for (std::size_t i = 0; i < lu_.rows(); ++i) {
        d *= lu_(i, i);
    }
    return d;
}

double
Lu::rcondEstimate() const
{
    if (!invertible_ || normA_ == 0.0) {  // yukta-lint: allow(float-eq)
        return 0.0;
    }
    double norm_inv = inverse().normInf();
    return 1.0 / (normA_ * norm_inv);
}

Matrix
solve(const Matrix& a, const Matrix& b)
{
    return Lu(a).solve(b);
}

Vector
solve(const Matrix& a, const Vector& b)
{
    return Lu(a).solve(b);
}

Matrix
inverse(const Matrix& a)
{
    return Lu(a).inverse();
}

double
determinant(const Matrix& a)
{
    return Lu(a).determinant();
}

Matrix
cholesky(const Matrix& a, double jitter)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("cholesky: matrix must be square");
    }
    std::size_t n = a.rows();
    double scale = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
        scale = std::max(scale, std::abs(a(i, i)));
    }

    auto attempt = [&](double eps) -> Matrix {
        Matrix l(n, n);
        for (std::size_t j = 0; j < n; ++j) {
            double d = a(j, j) + eps;
            for (std::size_t k = 0; k < j; ++k) {
                d -= l(j, k) * l(j, k);
            }
            if (d <= 0.0) {
                throw std::runtime_error(
                    "cholesky: matrix not positive definite");
            }
            l(j, j) = std::sqrt(d);
            for (std::size_t i = j + 1; i < n; ++i) {
                double s = a(i, j);
                for (std::size_t k = 0; k < j; ++k) {
                    s -= l(i, k) * l(j, k);
                }
                l(i, j) = s / l(j, j);
            }
        }
        return l;
    };

    if (jitter <= 0.0) {
        return attempt(0.0);
    }
    try {
        return attempt(0.0);
    } catch (const std::runtime_error&) {
        return attempt(jitter * std::max(scale, 1e-300));
    }
}

}  // namespace yukta::linalg
