#include "linalg/eig.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

namespace {

/** Reduces a square complex matrix to upper Hessenberg form in place. */
void
hessenberg(CMatrix& h)
{
    std::size_t n = h.rows();
    if (n < 3) {
        return;
    }
    for (std::size_t k = 0; k + 2 < n; ++k) {
        // Householder vector for column k, rows k+1..n-1.
        double norm = 0.0;
        for (std::size_t i = k + 1; i < n; ++i) {
            norm = std::hypot(norm, std::abs(h(i, k)));
        }
        if (norm < 1e-300) {
            continue;
        }
        Complex x0 = h(k + 1, k);
        Complex phase =
            std::abs(x0) > 0.0 ? x0 / std::abs(x0) : Complex(1.0, 0.0);
        Complex alpha = -phase * norm;

        std::vector<Complex> v(n, Complex(0.0, 0.0));
        for (std::size_t i = k + 1; i < n; ++i) {
            v[i] = h(i, k);
        }
        v[k + 1] -= alpha;
        double vnorm2 = 0.0;
        for (std::size_t i = k + 1; i < n; ++i) {
            vnorm2 += std::norm(v[i]);
        }
        if (vnorm2 < 1e-300) {
            continue;
        }

        // H := (I - 2 v v^H / |v|^2) H
        for (std::size_t c = 0; c < n; ++c) {
            Complex s(0.0, 0.0);
            for (std::size_t i = k + 1; i < n; ++i) {
                s += std::conj(v[i]) * h(i, c);
            }
            s *= 2.0 / vnorm2;
            for (std::size_t i = k + 1; i < n; ++i) {
                h(i, c) -= s * v[i];
            }
        }
        // H := H (I - 2 v v^H / |v|^2)
        for (std::size_t r = 0; r < n; ++r) {
            Complex s(0.0, 0.0);
            for (std::size_t i = k + 1; i < n; ++i) {
                s += h(r, i) * v[i];
            }
            s *= 2.0 / vnorm2;
            for (std::size_t i = k + 1; i < n; ++i) {
                h(r, i) -= s * std::conj(v[i]);
            }
        }
    }
}

/** Eigenvalues of a complex 2x2 block; returns the one closest to d. */
Complex
wilkinsonShift(Complex a, Complex b, Complex c, Complex d)
{
    Complex tr2 = (a + d) * 0.5;
    Complex disc = std::sqrt((a - d) * (a - d) * 0.25 + b * c);
    Complex l1 = tr2 + disc;
    Complex l2 = tr2 - disc;
    return std::abs(l1 - d) < std::abs(l2 - d) ? l1 : l2;
}

}  // namespace

std::vector<Complex>
eigenvalues(const CMatrix& a)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("eigenvalues: matrix must be square");
    }
    YUKTA_CHECK_FINITE(a, "eigenvalues: non-finite ", a.rows(), "x",
                       a.cols(), " input");
    std::size_t n = a.rows();
    std::vector<Complex> eig;
    eig.reserve(n);
    if (n == 0) {
        return eig;
    }

    CMatrix h = a;
    hessenberg(h);

    // Shifted QR with deflation on the active trailing block [0, m].
    std::size_t m = n - 1;
    int iter = 0;
    const int max_iter_per_eig = 80;
    int budget = max_iter_per_eig * static_cast<int>(n);

    while (true) {
        // Deflate negligible subdiagonals.
        while (m > 0) {
            double off = std::abs(h(m, m - 1));
            double scale =
                std::abs(h(m, m)) + std::abs(h(m - 1, m - 1)) + 1e-300;
            if (off <= 1e-14 * scale) {
                h(m, m - 1) = Complex(0.0, 0.0);
                eig.push_back(h(m, m));
                --m;
                iter = 0;
            } else {
                break;
            }
        }
        if (m == 0) {
            eig.push_back(h(0, 0));
            break;
        }
        if (--budget < 0) {
            throw std::runtime_error("eigenvalues: QR did not converge");
        }

        // Find the start of the active unreduced block.
        std::size_t lo = m;
        while (lo > 0) {
            double off = std::abs(h(lo, lo - 1));
            double scale =
                std::abs(h(lo, lo)) + std::abs(h(lo - 1, lo - 1)) + 1e-300;
            if (off <= 1e-14 * scale) {
                h(lo, lo - 1) = Complex(0.0, 0.0);
                break;
            }
            --lo;
        }

        Complex sigma = wilkinsonShift(h(m - 1, m - 1), h(m - 1, m),
                                       h(m, m - 1), h(m, m));
        // Occasionally use an exceptional shift to break cycles.
        if (++iter % 20 == 0) {
            sigma = Complex(std::abs(h(m, m - 1)) + std::abs(h(m, m)), 0.0);
        }

        // Explicit single-shift QR step on the block [lo, m] using
        // complex Givens rotations: H - sigma I = Q R, then R Q + sigma I.
        std::size_t blk = m - lo + 1;
        std::vector<double> cs(blk, 1.0);
        std::vector<Complex> sn(blk, Complex(0.0, 0.0));

        for (std::size_t i = lo; i <= m; ++i) {
            h(i, i) -= sigma;
        }
        for (std::size_t i = lo; i < m; ++i) {
            Complex f = h(i, i);
            Complex g = h(i + 1, i);
            double fa = std::abs(f);
            double ga = std::abs(g);
            double r = std::hypot(fa, ga);
            double c;
            Complex s;
            if (r < 1e-300) {
                c = 1.0;
                s = Complex(0.0, 0.0);
            } else {
                c = fa / r;
                // s chosen so that the rotated second entry vanishes.
                Complex fsign =
                    fa > 0.0 ? f / fa : Complex(1.0, 0.0);
                s = fsign * std::conj(g) / r;
            }
            cs[i - lo] = c;
            sn[i - lo] = s;
            // Apply to rows i, i+1 (columns max(lo,i-1).. n-1 would do;
            // we sweep the full row for simplicity).
            for (std::size_t col = (i == lo ? lo : i - 1); col < n; ++col) {
                Complex t1 = h(i, col);
                Complex t2 = h(i + 1, col);
                h(i, col) = c * t1 + s * t2;
                h(i + 1, col) = -std::conj(s) * t1 + c * t2;
            }
        }
        // Apply the adjoint rotations on the right (columns i, i+1).
        for (std::size_t i = lo; i < m; ++i) {
            double c = cs[i - lo];
            Complex s = sn[i - lo];
            std::size_t top = std::min(i + 2, m);
            for (std::size_t row = 0; row <= top; ++row) {
                Complex t1 = h(row, i);
                Complex t2 = h(row, i + 1);
                h(row, i) = c * t1 + std::conj(s) * t2;
                h(row, i + 1) = -s * t1 + c * t2;
            }
        }
        for (std::size_t i = lo; i <= m; ++i) {
            h(i, i) += sigma;
        }
    }

    return eig;
}

std::vector<Complex>
eigenvalues(const Matrix& a)
{
    return eigenvalues(CMatrix(a));
}

double
spectralRadius(const Matrix& a)
{
    double best = 0.0;
    for (const Complex& l : eigenvalues(a)) {
        best = std::max(best, std::abs(l));
    }
    return best;
}

double
spectralAbscissa(const Matrix& a)
{
    double best = -1e300;
    for (const Complex& l : eigenvalues(a)) {
        best = std::max(best, l.real());
    }
    return best;
}

SymmetricEigen
symmetricEigen(const Matrix& a)
{
    if (!a.isSquare()) {
        throw std::invalid_argument("symmetricEigen: matrix must be square");
    }
    std::size_t n = a.rows();
    // Work on a symmetrized copy to be safe against tiny asymmetries.
    Matrix s(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t j = 0; j <= i; ++j) {
            double v = 0.5 * (a(i, j) + a(j, i));
            s(i, j) = v;
            s(j, i) = v;
        }
    }
    Matrix v = Matrix::identity(n);

    const int max_sweeps = 60;
    for (int sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                off += s(p, q) * s(p, q);
            }
        }
        if (off < 1e-26 * (1.0 + s.normFro() * s.normFro())) {
            break;
        }
        for (std::size_t p = 0; p + 1 < n; ++p) {
            for (std::size_t q = p + 1; q < n; ++q) {
                double apq = s(p, q);
                if (std::abs(apq) < 1e-300) {
                    continue;
                }
                double tau = (s(q, q) - s(p, p)) / (2.0 * apq);
                double t = (tau >= 0.0 ? 1.0 : -1.0) /
                           (std::abs(tau) + std::sqrt(1.0 + tau * tau));
                double c = 1.0 / std::sqrt(1.0 + t * t);
                double sn = t * c;
                // Rotate rows/columns p and q of s.
                for (std::size_t k = 0; k < n; ++k) {
                    double skp = s(k, p);
                    double skq = s(k, q);
                    s(k, p) = c * skp - sn * skq;
                    s(k, q) = sn * skp + c * skq;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double spk = s(p, k);
                    double sqk = s(q, k);
                    s(p, k) = c * spk - sn * sqk;
                    s(q, k) = sn * spk + c * sqk;
                }
                for (std::size_t k = 0; k < n; ++k) {
                    double vkp = v(k, p);
                    double vkq = v(k, q);
                    v(k, p) = c * vkp - sn * vkq;
                    v(k, q) = sn * vkp + c * vkq;
                }
            }
        }
    }

    // Sort eigenpairs ascending.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; ++i) {
        order[i] = i;
    }
    std::sort(order.begin(), order.end(), [&](std::size_t i, std::size_t j) {
        return s(i, i) < s(j, j);
    });

    SymmetricEigen out;
    out.values.resize(n);
    out.vectors = Matrix(n, n);
    for (std::size_t i = 0; i < n; ++i) {
        out.values[i] = s(order[i], order[i]);
        for (std::size_t r = 0; r < n; ++r) {
            out.vectors(r, i) = v(r, order[i]);
        }
    }
    return out;
}

double
minSymmetricEigenvalue(const Matrix& a)
{
    return symmetricEigen(a).values.front();
}

bool
isPositiveSemidefinite(const Matrix& a, double tol)
{
    if (a.empty()) {
        return true;
    }
    double scale = std::max(a.normFro(), 1e-300);
    return minSymmetricEigenvalue(a) >= -tol * scale;
}

}  // namespace yukta::linalg
