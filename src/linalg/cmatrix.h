#ifndef YUKTA_LINALG_CMATRIX_H_
#define YUKTA_LINALG_CMATRIX_H_

/**
 * @file
 * Dense complex matrix, used for frequency responses, Hermitian
 * eigenproblems, and structured-singular-value computations.
 */

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "linalg/matrix.h"

namespace yukta::linalg {

using Complex = std::complex<double>;

/** Dense, row-major matrix of std::complex<double>. */
class CMatrix
{
  public:
    CMatrix() = default;

    /** Creates a rows x cols matrix filled with @p fill. */
    CMatrix(std::size_t rows, std::size_t cols, Complex fill = {});

    /** Creates a matrix from nested initializer lists (row major). */
    CMatrix(std::initializer_list<std::initializer_list<Complex>> rows);

    /** Promotes a real matrix to a complex one. */
    explicit CMatrix(const Matrix& real);

    /** @return the complex identity of size n. */
    static CMatrix identity(std::size_t n);

    /** @return a square matrix with @p d (real values) on the diagonal. */
    static CMatrix diag(const std::vector<double>& d);

    /** Shape accessors. */
    std::size_t rows() const { return rows_; }
    std::size_t cols() const { return cols_; }
    bool empty() const { return rows_ == 0 || cols_ == 0; }
    bool isSquare() const { return rows_ == cols_; }

    Complex& operator()(std::size_t r, std::size_t c);
    Complex operator()(std::size_t r, std::size_t c) const;

    /** @return pointer to the contiguous row-major storage. */
    Complex* data() { return data_.data(); }
    const Complex* data() const { return data_.data(); }

    CMatrix& operator+=(const CMatrix& rhs);
    CMatrix& operator-=(const CMatrix& rhs);
    CMatrix& operator*=(Complex s);

    /** @return the conjugate transpose. */
    CMatrix adjoint() const;

    /** @return the (non-conjugated) transpose. */
    CMatrix transpose() const;

    /** @return the sub-matrix of size h x w with top-left corner (r, c). */
    CMatrix block(std::size_t r, std::size_t c,
                  std::size_t h, std::size_t w) const;

    /** Copies @p src into this matrix with top-left corner (r, c). */
    void setBlock(std::size_t r, std::size_t c, const CMatrix& src);

    /** @return the real part as a Matrix. */
    Matrix realPart() const;

    /** @return the imaginary part as a Matrix. */
    Matrix imagPart() const;

    /** @return the Frobenius norm. */
    double normFro() const;

    /** @return the largest absolute entry (0 for empty matrices). */
    double maxAbs() const;

    /** @return true when entries differ from @p rhs by at most @p tol. */
    bool isApprox(const CMatrix& rhs, double tol = 1e-9) const;

    /** @return true when no entry has a NaN or infinite component. */
    bool allFinite() const;

  private:
    std::size_t rows_ = 0;
    std::size_t cols_ = 0;
    std::vector<Complex> data_;
};

CMatrix operator+(CMatrix lhs, const CMatrix& rhs);
CMatrix operator-(CMatrix lhs, const CMatrix& rhs);
CMatrix operator*(const CMatrix& lhs, const CMatrix& rhs);
CMatrix operator*(Complex s, CMatrix m);

/**
 * Solves the complex linear system A x = B via partial-pivot LU.
 *
 * @param a square complex matrix.
 * @param b right-hand side (may have several columns).
 * @return the solution matrix x.
 * @throws std::runtime_error when A is numerically singular.
 */
CMatrix csolve(const CMatrix& a, const CMatrix& b);

/** @return the inverse of a square complex matrix. */
CMatrix cinverse(const CMatrix& a);

/** YUKTA_CHECK_FINITE customization point (see core/contracts.h). */
inline bool yuktaAllFinite(const CMatrix& m) { return m.allFinite(); }

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_CMATRIX_H_
