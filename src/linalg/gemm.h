#ifndef YUKTA_LINALG_GEMM_H_
#define YUKTA_LINALG_GEMM_H_

/**
 * @file
 * Cache-blocked general matrix-matrix kernels for the batched runtime
 * tick engine (and anything else that multiplies one small matrix
 * against a wide column-block panel).
 *
 * Two entry points with two deliberately different IEEE contracts:
 *
 *  - gemmDense: every output element is the plain left-to-right sum
 *    over k of a(i,k) * b(k,j), starting from +0.0, with NO sparsity
 *    skip. Column j of the result is bit-identical to the dense
 *    matrix-vector product `Matrix * Vector` applied to column j of
 *    b, which is exactly what control::stepOnce evaluates per
 *    controller instance -- the batch == scalar bit-identity of the
 *    tick engine rests on this contract. A non-finite column poisons
 *    only itself: the kernel never mixes columns.
 *
 *  - gemmBlocked: bit-identical to the naive `Matrix * Matrix`
 *    operator, including its finite-guarded sparsity skip (a zero
 *    left entry is skipped only when the whole right factor is
 *    finite, so 0 * NaN still propagates).
 *
 * Both kernels block over the output rows and columns only; the
 * k accumulation order of every output element is untouched, which is
 * what makes bit-identity to the reference loops provable rather than
 * empirical. Inner loops run over contiguous row panels and
 * vectorize.
 */

#include <cstddef>

#include "linalg/matrix.h"

namespace yukta::linalg {

/**
 * Dense blocked kernel on raw row-major storage:
 * out (m x n) = a (m x k) * b (k x n).
 *
 * Per-element contract (the batch-tick oracle): out(i,j) is
 * accumulated from +0.0 over k ascending with no term skipped, the
 * same operation sequence as the dense `Matrix * Vector` product on
 * column j. @p out must not alias @p a or @p b.
 */
void gemmDense(const double* a, std::size_t m, std::size_t k,
               const double* b, std::size_t n, double* out);

/** Convenience wrapper over Matrix operands. */
Matrix gemmDense(const Matrix& a, const Matrix& b);

/**
 * Blocked product bit-identical to the naive `Matrix * Matrix`
 * operator: same finite-guarded sparsity skip, same k-ascending
 * accumulation per element.
 */
Matrix gemmBlocked(const Matrix& a, const Matrix& b);

/** Column-panel width both kernels block over (tests probe +-1). */
inline constexpr std::size_t kGemmColBlock = 256;

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_GEMM_H_
