#include "linalg/gemm.h"

#include <algorithm>
#include <stdexcept>

#include "core/contracts.h"

namespace yukta::linalg {

void
gemmDense(const double* a, std::size_t m, std::size_t k, const double* b,
          std::size_t n, double* out)
{
    std::fill(out, out + m * n, 0.0);
    if (m == 0 || n == 0 || k == 0) {
        return;
    }
    // Empty operands are exempt: all 0x0 matrices share one (possibly
    // null) data pointer, which is not aliasing in any harmful sense.
    YUKTA_REQUIRE(out != a && out != b,
                  "gemmDense: output aliases an input");
    // Panel over output columns so one panel of every b row and the
    // matching out rows stay cache-resident while a is walked; the k
    // loop stays outside the contiguous j loop, so each out(i,j) is
    // accumulated over k ascending -- the bit-identity contract.
    for (std::size_t j0 = 0; j0 < n; j0 += kGemmColBlock) {
        const std::size_t jw = std::min(kGemmColBlock, n - j0);
        for (std::size_t i = 0; i < m; ++i) {
            const double* arow = a + i * k;
            double* orow = out + i * n + j0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const double aik = arow[kk];
                const double* brow = b + kk * n + j0;
                for (std::size_t j = 0; j < jw; ++j) {
                    orow[j] += aik * brow[j];
                }
            }
        }
    }
}

Matrix
gemmDense(const Matrix& a, const Matrix& b)
{
    if (a.cols() != b.rows()) {
        throw std::invalid_argument("gemmDense: shape mismatch");
    }
    Matrix out(a.rows(), b.cols());
    gemmDense(a.data(), a.rows(), a.cols(), b.data(), b.cols(),
              out.data());
    return out;
}

Matrix
gemmBlocked(const Matrix& a, const Matrix& b)
{
    if (a.cols() != b.rows()) {
        throw std::invalid_argument("gemmBlocked: shape mismatch");
    }
    const std::size_t m = a.rows();
    const std::size_t k = a.cols();
    const std::size_t n = b.cols();
    Matrix out(m, n);
    if (m == 0 || n == 0 || k == 0) {
        return out;
    }
    // Mirror of the naive operator*: the sparsity skip would drop
    // IEEE non-finite propagation (0 * NaN must stay NaN), so it only
    // fires when the right operand is verified finite -- the same
    // rule, evaluated once, keeps the skipped-term set identical.
    const bool rhs_finite = b.allFinite();
    const double* ap = a.data();
    const double* bp = b.data();
    double* op = out.data();
    for (std::size_t j0 = 0; j0 < n; j0 += kGemmColBlock) {
        const std::size_t jw = std::min(kGemmColBlock, n - j0);
        for (std::size_t i = 0; i < m; ++i) {
            const double* arow = ap + i * k;
            double* orow = op + i * n + j0;
            for (std::size_t kk = 0; kk < k; ++kk) {
                const double aik = arow[kk];
                // yukta-lint: allow(float-eq) sparsity skip
                if (aik == 0.0 && rhs_finite) {
                    continue;
                }
                const double* brow = bp + kk * n + j0;
                for (std::size_t j = 0; j < jw; ++j) {
                    orow[j] += aik * brow[j];
                }
            }
        }
    }
    return out;
}

}  // namespace yukta::linalg
