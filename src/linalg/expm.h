#ifndef YUKTA_LINALG_EXPM_H_
#define YUKTA_LINALG_EXPM_H_

/**
 * @file
 * Matrix exponential via Pade approximation with scaling and squaring
 * (Higham's [13/13] method). Used for zero-order-hold discretization
 * of continuous-time models.
 */

#include "linalg/matrix.h"

namespace yukta::linalg {

/**
 * Computes e^A for a square matrix.
 *
 * @throws std::invalid_argument when @p a is not square.
 */
Matrix expm(const Matrix& a);

}  // namespace yukta::linalg

#endif  // YUKTA_LINALG_EXPM_H_
